(* Tests for incremental updates (paper Section 7): subtree insertion
   and deletion must keep every index consistent — verified by
   re-running queries under all strategies against the naive oracle on
   the mutated document, and by comparing against a freshly rebuilt
   database. *)

open Twigmatch
module T = Tm_xml.Xml_tree

let check = Alcotest.check

let book_doc () =
  T.document
    [
      T.elem "book"
        [
          T.elem_text "title" "XML";
          T.elem "allauthors"
            [
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "poe" ];
              T.elem "author" [ T.elem_text "fn" "john"; T.elem_text "ln" "doe" ];
            ];
          T.elem_text "year" "2000";
        ];
    ]

let queries =
  [
    "/book";
    "/book/allauthors/author[fn = 'jane']";
    "//author[fn = 'jane'][ln = 'doe']";
    "//author[ln = 'doe']";
    "/book[title = 'XML']//author[fn = 'jane']";
    "//fn";
    "//section[head = 'Origins']";
  ]

(* All strategies must agree with the naive matcher on the (mutated)
   document. *)
let check_consistent db doc label =
  List.iter
    (fun xpath ->
      let twig = Tm_query.Xpath_parser.parse xpath in
      let expected = Tm_query.Naive.query doc twig in
      List.iter
        (fun s ->
          check
            Alcotest.(list int)
            (Printf.sprintf "%s: %s under %s" label xpath (Database.strategy_name s))
            expected
            (Executor.run ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids)
        Database.all_strategies)
    queries

let find_id doc name =
  T.fold doc (fun acc n -> if T.label_name n = name && acc = None then Some n.T.id else acc) None
  |> Option.get

let test_insert_author () =
  (* The paper's Section 7 example: insert an author with a certain
     name into an existing book. *)
  let doc = book_doc () in
  let db = Database.create doc in
  let allauthors = find_id doc "allauthors" in
  let new_author = T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "doe" ] in
  let new_id = Updates.insert_subtree db ~parent:allauthors new_author in
  if new_id < doc.T.node_count then Alcotest.fail "new id should be fresh";
  check_consistent db doc "after insert";
  (* the new author is findable through the twig the paper uses *)
  let twig = Tm_query.Xpath_parser.parse "//author[fn = 'jane'][ln = 'doe']" in
  check Alcotest.(list int) "new author found" [ new_id ] (Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) db twig).Executor.ids

let test_insert_deep_subtree () =
  let doc = book_doc () in
  let db = Database.create doc in
  let book = find_id doc "book" in
  let chapter =
    T.elem "chapter"
      [ T.elem_text "title" "XML"; T.elem "section" [ T.elem_text "head" "Origins" ] ]
  in
  ignore (Updates.insert_subtree db ~parent:book chapter);
  check_consistent db doc "after deep insert";
  let twig = Tm_query.Xpath_parser.parse "/book//title[. = 'XML']" in
  check Alcotest.int "two XML titles" 2 (List.length (Executor.run ~hint:(Tm_plan.Hint.Force Database.DP) db twig).Executor.ids)

let test_insert_new_schema_path () =
  (* a tag never seen before must flow into the dictionary and catalog *)
  let doc = book_doc () in
  let db = Database.create doc in
  let book = find_id doc "book" in
  ignore
    (Updates.insert_subtree db ~parent:book
       (T.elem "appendix" [ T.elem_text "errata" "typo on p.3" ]));
  check_consistent db doc "after new-path insert";
  let twig = Tm_query.Xpath_parser.parse "//appendix/errata" in
  check Alcotest.int "new path queryable" 1
    (List.length (Executor.run ~hint:(Tm_plan.Hint.Force Database.Asr) db twig).Executor.ids)

let test_delete_author () =
  let doc = book_doc () in
  let db = Database.create doc in
  (* delete john doe (the second author) *)
  let john_fn =
    T.fold doc
      (fun acc n ->
        if T.label_name n = "fn" && T.leaf_value n = Some "john" && acc = None then Some n.T.id
        else acc)
      None
    |> Option.get
  in
  (* the author node is fn's parent *)
  let author_id =
    match Tm_xmldb.Edge_table.parent_of db.Database.edge john_fn with
    | Some (p, _, _) -> p
    | None -> Alcotest.fail "no parent"
  in
  let removed = Updates.delete_subtree db author_id in
  check Alcotest.int "author + fn + ln removed" 3 removed;
  check_consistent db doc "after delete";
  let twig = Tm_query.Xpath_parser.parse "//author[ln = 'doe']" in
  check Alcotest.(list int) "john doe gone" [] (Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) db twig).Executor.ids

let test_delete_last_child_of_branch () =
  (* deleting every child of a branch point leaves a childless element
     that must still match structurally while its former descendants
     vanish from every index *)
  let doc = book_doc () in
  let db = Database.create doc in
  let twig = Tm_query.Xpath_parser.parse "//author" in
  let authors = (Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) db twig).Executor.ids in
  check Alcotest.int "two authors to start" 2 (List.length authors);
  List.iter (fun id -> ignore (Updates.delete_subtree db id)) authors;
  check_consistent db doc "after deleting every author";
  check
    Alcotest.(list int)
    "no authors left" []
    (Executor.run ~hint:(Tm_plan.Hint.Force Database.DP) db twig).Executor.ids;
  check Alcotest.int "the emptied branch point survives" 1
    (List.length
       (Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) db
          (Tm_query.Xpath_parser.parse "/book/allauthors"))
         .Executor.ids)

let test_insert_under_fresh_subtree () =
  (* a freshly minted id is immediately a valid insertion target *)
  let doc = book_doc () in
  let db = Database.create doc in
  let book = find_id doc "book" in
  let chapter_id =
    Updates.insert_subtree db ~parent:book (T.elem "chapter" [ T.elem_text "title" "Twigs" ])
  in
  let section_id =
    Updates.insert_subtree db ~parent:chapter_id
      (T.elem "section" [ T.elem_text "head" "Origins" ])
  in
  if section_id <= chapter_id then Alcotest.fail "section id should be minted after chapter's";
  check_consistent db doc "after insert under fresh subtree";
  let twig = Tm_query.Xpath_parser.parse "//chapter/section[head = 'Origins']" in
  check
    Alcotest.(list int)
    "nested fresh subtree queryable" [ section_id ]
    (Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) db twig).Executor.ids

let test_generation_bumps_on_both_paths () =
  (* both update paths must mint a fresh plan-cache generation, or the
     planner could serve a plan sized for the pre-update indexes *)
  let doc = book_doc () in
  let db = Database.create doc in
  let g0 = Database.generation db in
  let allauthors = find_id doc "allauthors" in
  let id =
    Updates.insert_subtree db ~parent:allauthors (T.elem "author" [ T.elem_text "fn" "mira" ])
  in
  let g1 = Database.generation db in
  if g1 = g0 then Alcotest.fail "insert must mint a fresh generation (stale-plan hazard)";
  ignore (Updates.delete_subtree db id);
  if Database.generation db = g1 then
    Alcotest.fail "delete must mint a fresh generation (stale-plan hazard)"

let test_insert_then_delete_roundtrip () =
  (* after insert + delete, every query answers as before *)
  let doc = book_doc () in
  let db = Database.create doc in
  let before =
    List.map
      (fun q -> (q, (Executor.run ~hint:(Tm_plan.Hint.Force Database.DP) db (Tm_query.Xpath_parser.parse q)).Executor.ids))
      queries
  in
  let allauthors = find_id doc "allauthors" in
  let new_id =
    Updates.insert_subtree db ~parent:allauthors
      (T.elem "author" [ T.elem_text "fn" "mira"; T.elem_text "ln" "poe" ])
  in
  ignore (Updates.delete_subtree db new_id);
  List.iter
    (fun (q, expected) ->
      check
        Alcotest.(list int)
        ("roundtrip: " ^ q)
        expected
        (Executor.run ~hint:(Tm_plan.Hint.Force Database.DP) db (Tm_query.Xpath_parser.parse q)).Executor.ids)
    before;
  check_consistent db doc "after roundtrip"

let test_update_matches_rebuild () =
  (* incremental result = rebuild-from-scratch result, for every
     strategy, on a generated document *)
  let doc = Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = 3; scale = 0.03 } in
  let db = Database.create doc in
  let site = find_id doc "site" in
  let item =
    T.elem "item"
      [
        T.attr "id" "itemX";
        T.elem_text "location" "United States";
        T.elem_text "quantity" "2";
        T.elem "mailbox" [ T.elem "mail" [ T.elem_text "to" "x@example" ] ];
      ]
  in
  ignore (Updates.insert_subtree db ~parent:site item);
  (* rebuild over the mutated document: renumber to compare answers via
     the oracle, not raw ids (ids differ between incremental and
     rebuilt databases) *)
  List.iter
    (fun xpath ->
      let twig = Tm_query.Xpath_parser.parse xpath in
      let expected = Tm_query.Naive.query doc twig in
      List.iter
        (fun s ->
          check
            Alcotest.(list int)
            (Printf.sprintf "%s under %s" xpath (Database.strategy_name s))
            expected
            (Executor.run ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids)
        Database.all_strategies)
    [ "//item[quantity = '2']"; "/site/item/mailbox/mail/to"; "//item[location = 'United States']" ]

let test_invalid_updates_rejected () =
  let doc = book_doc () in
  let db = Database.create doc in
  (match Updates.insert_subtree db ~parent:0 (T.elem "x" []) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "virtual root insert should fail");
  (match Updates.delete_subtree db (find_id doc "book") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "document root delete should fail");
  match Updates.delete_subtree db 99999 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown id delete should fail"

let test_update_with_compression_options () =
  (* updates must respect build-time compression options *)
  let doc = book_doc () in
  let db = Database.create ~strategies:Database.[ RP; DP ] ~idlist_codec:`Raw doc in
  let allauthors = find_id doc "allauthors" in
  ignore
    (Updates.insert_subtree db ~parent:allauthors
       (T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "doe" ]));
  let twig = Tm_query.Xpath_parser.parse "//author[fn = 'jane'][ln = 'doe']" in
  let expected = Tm_query.Naive.query doc twig in
  check Alcotest.(list int) "raw-idlist db updated" expected
    (Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) db twig).Executor.ids

let test_snapshot_roundtrip () =
  let doc = Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = 3; scale = 0.03 } in
  let db = Database.create doc in
  let path = Filename.temp_file "twigmatch" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Persist.save db path;
      let db2 = Persist.load path in
      (* the reloaded database answers every strategy identically, and
         updates still work on it *)
      let twig = Tm_query.Xpath_parser.parse "//item[quantity = '2']" in
      List.iter
        (fun s ->
          check
            Alcotest.(list int)
            (Database.strategy_name s)
            (Executor.run ~hint:(Tm_plan.Hint.Force s) db twig).Executor.ids
            (Executor.run ~hint:(Tm_plan.Hint.Force s) db2 twig).Executor.ids)
        Database.all_strategies;
      let site = find_id db2.Database.doc "site" in
      let id =
        Updates.insert_subtree db2 ~parent:site
          (Tm_xml.Xml_tree.elem "item" [ Tm_xml.Xml_tree.elem_text "quantity" "2" ])
      in
      let after = (Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) db2 twig).Executor.ids in
      if not (List.mem id after) then Alcotest.fail "update lost after reload")

let test_snapshot_rejects_garbage () =
  let path = Filename.temp_file "twigmatch" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "NOT-A-SNAPSHOT-----";
      close_out oc;
      match Persist.load path with
      | exception Persist.Bad_snapshot _ -> ()
      | _ -> Alcotest.fail "expected Bad_snapshot")

let test_snapshot_rejects_pruned () =
  let doc = Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = 3; scale = 0.02 } in
  let db = Database.create ~strategies:Database.[ DP ] ~head_filter:(fun _ -> true) doc in
  let path = Filename.temp_file "twigmatch" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      match Persist.save db path with
      | exception Persist.Bad_snapshot _ -> ()
      | _ -> Alcotest.fail "expected Bad_snapshot for closure-bearing database")

let () =
  Alcotest.run "updates"
    [
      ( "updates",
        [
          Alcotest.test_case "insert author (paper 7)" `Quick test_insert_author;
          Alcotest.test_case "insert deep subtree" `Quick test_insert_deep_subtree;
          Alcotest.test_case "insert new schema path" `Quick test_insert_new_schema_path;
          Alcotest.test_case "delete author" `Quick test_delete_author;
          Alcotest.test_case "delete last child of a branch point" `Quick
            test_delete_last_child_of_branch;
          Alcotest.test_case "insert under fresh subtree" `Quick test_insert_under_fresh_subtree;
          Alcotest.test_case "generation bumps on insert and delete" `Quick
            test_generation_bumps_on_both_paths;
          Alcotest.test_case "insert/delete roundtrip" `Quick test_insert_then_delete_roundtrip;
          Alcotest.test_case "incremental = rebuild" `Slow test_update_matches_rebuild;
          Alcotest.test_case "invalid updates rejected" `Quick test_invalid_updates_rejected;
          Alcotest.test_case "respects compression options" `Quick
            test_update_with_compression_options;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "save/load roundtrip + update" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_snapshot_rejects_garbage;
          Alcotest.test_case "pruned database rejected" `Quick test_snapshot_rejects_pruned;
        ] );
    ]
