(** A chosen physical plan for one twig: the PCsubpath cover with
    per-path cardinality estimates, the join order, the winning strategy
    and the full cost comparison it won. Executor results carry the
    plan; [explain], the journal and [twigql plan] render it. *)

type path_est = {
  p_label : string;  (** rendered path, e.g. [//site/people/person/name] *)
  p_raw_est : int;  (** estimate straight from catalog / Edge statistics *)
  p_est : int;  (** estimate after journal calibration *)
}

type t = {
  shape : string;  (** normalized twig shape — the cache key *)
  strategy : Strategy.t;
  cover : path_est array;  (** one entry per linear path, decomposition order *)
  join_order : int array;  (** indices into [cover], driver (most selective) first *)
  est_rows : int;  (** estimated result cardinality *)
  cost : float;  (** winning cost, in entries-touched units *)
  rivals : (Strategy.t * float) list;  (** every costed strategy, cheapest first *)
  calibration : float;  (** journal correction factor applied to raw estimates *)
  cached : bool;  (** served from the plan cache *)
  reason : string;  (** one-line justification *)
}

let trivial ~shape ~strategy reason =
  {
    shape;
    strategy;
    cover = [||];
    join_order = [||];
    est_rows = 0;
    cost = 0.0;
    rivals = [];
    calibration = 1.0;
    cached = false;
    reason;
  }

let summary p =
  Printf.sprintf "%s est=%d%s%s" (Strategy.name p.strategy) p.est_rows
    (if p.cached then " (cached)" else "")
    (if Float.equal p.calibration 1.0 then ""
     else Printf.sprintf " (calibration x%.2f)" p.calibration)

let to_string p =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "shape: %s%s" p.shape (if p.cached then "  [plan cache hit]" else "");
  add "strategy: %s  (%s)" (Strategy.name p.strategy) p.reason;
  Array.iteri
    (fun rank i ->
      let pe = p.cover.(i) in
      add "  join %d: path %d: %s  (est. %d rows%s)" (rank + 1) (i + 1) pe.p_label pe.p_est
        (if Int.equal pe.p_est pe.p_raw_est then ""
         else Printf.sprintf ", raw %d" pe.p_raw_est))
    p.join_order;
  add "  estimated result rows: %d" p.est_rows;
  (match p.rivals with
  | [] -> ()
  | rivals ->
    add "  costs: %s"
      (String.concat "  "
         (List.map (fun (s, c) -> Printf.sprintf "%s~%.0f" (Strategy.name s) c) rivals)));
  if not (Float.equal p.calibration 1.0) then
    add "  journal calibration: x%.2f" p.calibration;
  Buffer.contents buf

let json_string s = Printf.sprintf "%S" s

let to_json p =
  let cover =
    Array.to_list p.cover
    |> List.map (fun pe ->
           Printf.sprintf "{\"path\":%s,\"est\":%d,\"raw_est\":%d}" (json_string pe.p_label)
             pe.p_est pe.p_raw_est)
    |> String.concat ","
  in
  let order =
    Array.to_list p.join_order |> List.map string_of_int |> String.concat ","
  in
  let rivals =
    List.map
      (fun (s, c) -> Printf.sprintf "{\"strategy\":%s,\"cost\":%.1f}" (json_string (Strategy.name s)) c)
      p.rivals
    |> String.concat ","
  in
  String.concat ""
    [
      "{";
      Printf.sprintf "\"shape\":%s," (json_string p.shape);
      Printf.sprintf "\"strategy\":%s," (json_string (Strategy.name p.strategy));
      Printf.sprintf "\"cover\":[%s]," cover;
      Printf.sprintf "\"join_order\":[%s]," order;
      Printf.sprintf "\"est_rows\":%d," p.est_rows;
      Printf.sprintf "\"cost\":%.1f," p.cost;
      Printf.sprintf "\"rivals\":[%s]," rivals;
      Printf.sprintf "\"calibration\":%.3f," p.calibration;
      Printf.sprintf "\"cached\":%b," p.cached;
      Printf.sprintf "\"reason\":%s" (json_string p.reason);
      "}";
    ]
