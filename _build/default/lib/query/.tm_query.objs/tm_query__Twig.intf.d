lib/query/twig.mli:
