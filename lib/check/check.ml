(** Offline invariant verifier (fsck) for the index family. See the
    interface for the catalogue of checks.

    All B+-tree pages are decoded {e raw} through {!Bptree.view_page}:
    the tree's decoded-node cache is deliberately bypassed, because a
    page corrupted behind the cache's back (the exact post-crash /
    bit-rot scenario an fsck exists for) would otherwise be invisible. *)

open Tm_storage
open Tm_xmldb
open Tm_index

type code =
  | Checksum
  | Page_bounds
  | Page_cycle
  | Page_decode
  | Key_order
  | Leaf_chain
  | Balance
  | Entry_count
  | Roundtrip
  | Key_decode
  | Idlist_codec
  | Idlist_order
  | Idlist_length
  | Missing_row
  | Extra_row
  | Edge_link
  | Catalog
  | Heap_corrupt

let code_name = function
  | Checksum -> "checksum"
  | Page_bounds -> "page_bounds"
  | Page_cycle -> "page_cycle"
  | Page_decode -> "page_decode"
  | Key_order -> "key_order"
  | Leaf_chain -> "leaf_chain"
  | Balance -> "balance"
  | Entry_count -> "entry_count"
  | Roundtrip -> "roundtrip"
  | Key_decode -> "key_decode"
  | Idlist_codec -> "idlist_codec"
  | Idlist_order -> "idlist_order"
  | Idlist_length -> "idlist_length"
  | Missing_row -> "missing_row"
  | Extra_row -> "extra_row"
  | Edge_link -> "edge_link"
  | Catalog -> "catalog"
  | Heap_corrupt -> "heap_corrupt"

type location = { structure : string; page : int option; entry : int option; key : string option }
type violation = { code : code; loc : location; detail : string }
type summary = { structures : int; pages : int; entries : int }
type report = { violations : violation list; summary : summary }

let is_clean r = match r.violations with [] -> true | _ :: _ -> false

(* Observability: fsck work and findings are metrics like any other
   subsystem's, so a monitoring setup can alert on violations. *)
let c_structures = Tm_obs.Obs.counter "check.structures"
let c_pages = Tm_obs.Obs.counter "check.pages_checked"
let c_entries = Tm_obs.Obs.counter "check.entries_checked"
let c_violations = Tm_obs.Obs.counter "check.violations"

(* Violation accumulator: violations are appended in discovery order. *)
type acc = { mutable vs : violation list }

let add acc code ~structure ?page ?entry ?key detail =
  Tm_obs.Obs.incr c_violations;
  acc.vs <- { code; loc = { structure; page; entry; key }; detail } :: acc.vs

(* Stored keys are binary (designators, 0x00 separators); escape them
   for reports. *)
let printable_key k =
  let buf = Buffer.create (String.length k + 8) in
  String.iter
    (fun c ->
      if c >= ' ' && c <= '~' && c <> '\\' && c <> '"' then Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c)))
    k;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* B+-tree structural checks                                           *)
(* ------------------------------------------------------------------ *)

(* Walk [tree] from the root, checking structural invariants; returns
   the collected (page, slot, key, payload) entries (the raw multiset a
   semantic pass compares against ground truth) and the pages seen. *)
let walk_tree acc tree =
  let structure = Bptree.name tree in
  let page_limit = Pager.page_count (Buffer_pool.pager (Bptree.pool tree)) in
  let visited = Hashtbl.create 64 in
  let collected = ref [] in
  (* leaves in DFS (= key) order: (page, entries, next) *)
  let leaves = ref [] in
  let pages_walked = ref 0 in
  let entry_total = ref 0 in
  let leaf_depth = ref (-1) in
  let rec go page lo hi depth =
    if page < 0 || page >= page_limit then
      add acc Page_bounds ~structure ~page
        (Printf.sprintf "page id outside pager range [0, %d)" page_limit)
    else if Hashtbl.mem visited page then
      add acc Page_cycle ~structure ~page "page reachable twice in one walk"
    else begin
      Hashtbl.add visited page ();
      incr pages_walked;
      Tm_obs.Obs.incr c_pages;
      match Bptree.view_page tree page with
      | exception Pager.Corrupt_page { detail; _ } ->
        (* The page failed its CRC on the fault-in read. Report it and
           prune the walk here: its bytes are untrustworthy, and the
           checksum pass already covers the rest of the pager. *)
        add acc Checksum ~structure ~page detail
      | Error m -> add acc Page_decode ~structure ~page m
      | Ok view ->
        (* front-coding round-trip: the canonical re-encoding must equal
           the stored image (up to the pager's zero padding) *)
        let enc = Bptree.encode_view tree view in
        let img = Bptree.page_image tree page in
        let img_ok =
          String.length img >= String.length enc
          && String.equal (String.sub img 0 (String.length enc)) enc
          &&
          let rec zeros i = i >= String.length img || (img.[i] = '\x00' && zeros (i + 1)) in
          zeros (String.length enc)
        in
        if not img_ok then
          add acc Roundtrip ~structure ~page "stored image differs from canonical re-encoding";
        (match view with
        | Bptree.Leaf_view { entries; next } ->
          if !leaf_depth = -1 then leaf_depth := depth
          else if !leaf_depth <> depth then
            add acc Balance ~structure ~page
              (Printf.sprintf "leaf at depth %d, others at %d" depth !leaf_depth);
          Array.iteri
            (fun i (k, p) ->
              Tm_obs.Obs.incr c_entries;
              incr entry_total;
              (* duplicates may equal the separator key on either side *)
              (match lo with
              | Some b when String.compare k b < 0 ->
                add acc Key_order ~structure ~page ~entry:i ~key:(printable_key k)
                  "leaf key below the separator lower bound"
              | _ -> ());
              (match hi with
              | Some b when String.compare k b > 0 ->
                add acc Key_order ~structure ~page ~entry:i ~key:(printable_key k)
                  "leaf key above the separator upper bound"
              | _ -> ());
              if i > 0 && String.compare (fst entries.(i - 1)) k > 0 then
                add acc Key_order ~structure ~page ~entry:i ~key:(printable_key k)
                  "leaf entries out of order";
              collected := (page, i, k, p) :: !collected)
            entries;
          leaves := (page, entries, next) :: !leaves
        | Bptree.Internal_view { keys; children } ->
          Array.iteri
            (fun i k ->
              if i > 0 && String.compare keys.(i - 1) k > 0 then
                add acc Key_order ~structure ~page ~entry:i ~key:(printable_key k)
                  "internal separator keys out of order")
            keys;
          Array.iteri
            (fun i child ->
              let lo' = if i = 0 then lo else Some keys.(i - 1) in
              let hi' = if i = Array.length keys then hi else Some keys.(i) in
              go child lo' hi' (depth + 1))
            children)
    end
  in
  go (Bptree.root_page tree) None None 1;
  Tm_obs.Obs.incr c_structures;
  (* leaf chain: DFS leaf order must equal next-pointer order, and keys
     must not decrease across the chain *)
  let leaves = List.rev !leaves in
  let rec chain = function
    | [] -> ()
    | [ (page, _, next) ] -> (
      match next with
      | None -> ()
      | Some n when n < 0 || n >= page_limit ->
        add acc Page_bounds ~structure ~page
          (Printf.sprintf "next pointer %d outside pager range [0, %d)" n page_limit)
      | Some n ->
        add acc Leaf_chain ~structure ~page (Printf.sprintf "last leaf has next pointer %d" n))
    | (page, entries, next) :: ((page', entries', _) :: _ as rest) ->
      (match next with
      | Some n when n = page' -> ()
      | Some n when n < 0 || n >= page_limit ->
        add acc Page_bounds ~structure ~page
          (Printf.sprintf "next pointer %d outside pager range [0, %d)" n page_limit)
      | Some n ->
        add acc Leaf_chain ~structure ~page
          (Printf.sprintf "next pointer %d, but the following leaf is page %d" n page')
      | None ->
        add acc Leaf_chain ~structure ~page
          (Printf.sprintf "missing next pointer to leaf page %d" page'));
      (match (Array.length entries, Array.length entries') with
      | 0, _ | _, 0 -> ()
      | n, _ ->
        let last = fst entries.(n - 1) and first = fst entries'.(0) in
        if String.compare last first > 0 then
          add acc Leaf_chain ~structure ~page:page' ~key:(printable_key first)
            "first key below the previous leaf's last key");
      chain rest
  in
  chain leaves;
  (if !leaf_depth <> -1 && !leaf_depth <> Bptree.height tree then
     add acc Balance ~structure
       (Printf.sprintf "recorded height %d, observed %d" (Bptree.height tree) !leaf_depth));
  if !entry_total <> Bptree.entry_count tree then
    add acc Entry_count ~structure
      (Printf.sprintf "recorded %d entries, walk found %d" (Bptree.entry_count tree) !entry_total);
  (List.rev !collected, !pages_walked)

let check_tree tree =
  let acc = { vs = [] } in
  ignore (walk_tree acc tree);
  List.rev acc.vs

(* ------------------------------------------------------------------ *)
(* Heap-file checks                                                    *)
(* ------------------------------------------------------------------ *)

let walk_heap acc heap =
  let structure = Heap_file.name heap in
  let total = ref 0 in
  let pages = Heap_file.pages heap in
  List.iter
    (fun page ->
      Tm_obs.Obs.incr c_pages;
      match Heap_file.records_of_page heap page with
      | exception Pager.Corrupt_page { detail; _ } -> add acc Checksum ~structure ~page detail
      | Error m -> add acc Heap_corrupt ~structure ~page m
      | Ok records ->
        Tm_obs.Obs.add c_entries (Array.length records);
        total := !total + Array.length records)
    pages;
  Tm_obs.Obs.incr c_structures;
  if !total <> Heap_file.record_count heap then
    add acc Heap_corrupt ~structure
      (Printf.sprintf "recorded %d records, pages hold %d" (Heap_file.record_count heap) !total);
  List.length pages

let check_heap heap =
  let acc = { vs = [] } in
  ignore (walk_heap acc heap);
  List.rev acc.vs

(* ------------------------------------------------------------------ *)
(* Checksum pass                                                       *)
(* ------------------------------------------------------------------ *)

(* Verify every stored page image against its sidecar CRC32, directly
   in the pager — below the buffer pool, so a page corrupted on "disk"
   behind a clean cached frame is still found. Read-only and no-op for
   a pager created with [checksums:false]. *)
let walk_pager acc pager =
  let structure = "pager" in
  let n = Pager.page_count pager in
  for page = 0 to n - 1 do
    if not (Pager.verify_page pager page) then
      add acc Checksum ~structure ~page "stored page image does not match its checksum"
  done;
  n

let check_pager pager =
  let acc = { vs = [] } in
  ignore (walk_pager acc pager);
  List.rev acc.vs

(* ------------------------------------------------------------------ *)
(* Index-family semantic checks                                        *)
(* ------------------------------------------------------------------ *)

(* Verify one stored id chain against the edge table and region index:
   every id must carry the tag its schema position claims, be the child
   of its predecessor by both the backward link and region containment,
   and rooted chains must start at a level-1 node under the virtual
   root. *)
let check_links acc ~structure ~page ~entry ~key ~edge ~region ~head schema ids =
  let pkey = printable_key key in
  let tags = Schema_path.to_list schema in
  let anchored = match head with Some h -> h <> 0 | None -> false in
  (* head-anchored rows include the head's own tag in the schema but
     exclude the head from the id list (paper Figure 5) *)
  let tags_for_ids = if anchored then match tags with [] -> [] | _ :: t -> t else tags in
  if List.length tags_for_ids = List.length ids then begin
    let prev = ref (if anchored then head else None) in
    List.iter2
      (fun tag id ->
        (match Edge_table.node_record edge id with
        | exception Invalid_argument m -> add acc Edge_link ~structure ~page ~entry ~key:pkey m
        | None ->
          add acc Edge_link ~structure ~page ~entry ~key:pkey
            (Printf.sprintf "id %d has no edge record" id)
        | Some (parent_id, _, own_tag, _) ->
          if own_tag <> tag then
            add acc Edge_link ~structure ~page ~entry ~key:pkey
              (Printf.sprintf "id %d has tag %d, schema position says %d" id own_tag tag);
          (match !prev with
          | Some p ->
            if parent_id <> p then
              add acc Edge_link ~structure ~page ~entry ~key:pkey
                (Printf.sprintf "id %d has parent %d, id chain says %d" id parent_id p);
            (match Region.is_parent region ~parent:p ~child:id with
            | true -> ()
            | false ->
              add acc Edge_link ~structure ~page ~entry ~key:pkey
                (Printf.sprintf "region index denies that %d is the parent of %d" p id)
            | exception Invalid_argument m ->
              add acc Edge_link ~structure ~page ~entry ~key:pkey m)
          | None -> (
            if parent_id <> 0 then
              add acc Edge_link ~structure ~page ~entry ~key:pkey
                (Printf.sprintf "rooted chain starts at %d whose parent is %d, not the virtual root"
                   id parent_id);
            match Region.level_of region id with
            | 1 -> ()
            | l ->
              add acc Edge_link ~structure ~page ~entry ~key:pkey
                (Printf.sprintf "rooted chain starts at %d at level %d" id l)
            | exception Invalid_argument m ->
              add acc Edge_link ~structure ~page ~entry ~key:pkey m)));
        prev := Some id)
      tags_for_ids ids
  end

let check_family acc fam ~dict ~catalog ~edge ~region doc =
  let tree = Family.tree fam in
  let structure = Bptree.name tree in
  let entries, pages = walk_tree acc tree in
  let config = Family.config fam in
  let full = match config.Family.ids with Family.Full_idlist -> true | _ -> false in
  List.iter
    (fun (pageno, slot, key, payload) ->
      let page = Some pageno and entry = Some slot in
      let pkey = Some (printable_key key) in
      match Family.decode_idlist fam payload with
      | exception Invalid_argument m ->
        add acc Idlist_codec ~structure ?page ?entry ?key:pkey m
      | exception Failure m -> add acc Idlist_codec ~structure ?page ?entry ?key:pkey m
      | ids -> (
        if not (String.equal (Family.encode_idlist fam ids) payload) then
          add acc Idlist_codec ~structure ?page ?entry ?key:pkey
            "payload is not the canonical IdList encoding";
        let rec ordered = function
          | a :: (b :: _ as rest) -> if a < b then ordered rest else false
          | _ -> true
        in
        if not (ordered ids) then
          add acc Idlist_order ~structure ?page ?entry ?key:pkey
            "decoded ids are not strictly increasing";
        match Family.decode_entry_key fam key with
        | exception Invalid_argument m -> add acc Key_decode ~structure ?page ?entry ?key:pkey m
        | exception Failure m -> add acc Key_decode ~structure ?page ?entry ?key:pkey m
        | head, _value, schema ->
          let anchored = match head with Some h -> h <> 0 | None -> false in
          (* |IdList| = |SchemaPath| (Section 3.1); head-anchored rows
             store one id fewer, their head being named by the key *)
          let expected =
            if anchored then Schema_path.length schema - 1 else Schema_path.length schema
          in
          (if full then begin
             if List.length ids <> expected then
               add acc Idlist_length ~structure ?page ?entry ?key:pkey
                 (Printf.sprintf "IdList has %d ids, schema path of length %d requires %d"
                    (List.length ids) (Schema_path.length schema) expected)
           end
           else if List.length ids > 1 then
             add acc Idlist_length ~structure ?page ?entry ?key:pkey
               (Printf.sprintf "id-sublist member stores %d ids" (List.length ids)));
          if (not anchored) && Option.is_none (Schema_catalog.find catalog schema) then
            add acc Catalog ~structure ?page ?entry ?key:pkey
              (Printf.sprintf "rooted schema path %s is not in the catalog"
                 (Schema_path.to_string dict schema));
          if full && List.length ids = expected then
            check_links acc ~structure ~page:pageno ~entry:slot ~key ~edge ~region ~head schema
              ids))
    entries;
  (* semantic ground truth: the member must hold exactly the (key,
     payload) multiset the document's 4-ary relation produces under its
     layout (ROOTPATHS = root-to-leaf prefixes, DATAPATHS = subpath
     closure, paper Section 3.2) *)
  let expected = Family.expected_entries fam ~dict doc in
  let actual =
    List.sort (fun (_, _, k1, p1) (_, _, k2, p2) -> Codec.compare_kv (k1, p1) (k2, p2)) entries
  in
  let describe key =
    match Family.decode_entry_key fam key with
    | exception Invalid_argument _ | exception Failure _ -> "undecodable key"
    | _, value, schema ->
      Printf.sprintf "schema %s, value %s"
        (Schema_path.to_string dict schema)
        (match value with None -> "null" | Some v -> Printf.sprintf "%S" v)
  in
  let rec diff exp act =
    match (exp, act) with
    | [], [] -> ()
    | (k, p) :: exp', [] ->
      add acc Missing_row ~structure ~key:(printable_key k)
        (Printf.sprintf "expected row absent (%s)" (describe k));
      ignore p;
      diff exp' []
    | [], (page, slot, k, _) :: act' ->
      add acc Extra_row ~structure ~page ~entry:slot ~key:(printable_key k)
        (Printf.sprintf "stored row never produced by the document (%s)" (describe k));
      diff [] act'
    | ((ek, ep) :: exp' as exp), ((page, slot, ak, ap) :: act' as act) -> (
      match Codec.compare_kv (ek, ep) (ak, ap) with
      | 0 -> diff exp' act'
      | c when c < 0 ->
        add acc Missing_row ~structure ~key:(printable_key ek)
          (Printf.sprintf "expected row absent (%s)" (describe ek));
        diff exp' act
      | _ ->
        add acc Extra_row ~structure ~page ~entry:slot ~key:(printable_key ak)
          (Printf.sprintf "stored row never produced by the document (%s)" (describe ak));
        diff exp act')
  in
  diff expected actual;
  pages

(* ------------------------------------------------------------------ *)
(* Whole-database verification                                         *)
(* ------------------------------------------------------------------ *)

let check_database (db : Twigmatch.Database.t) =
  Tm_obs.Obs.with_span "fsck" (fun () ->
      let acc = { vs = [] } in
      let structures = ref 0 in
      let pages = ref 0 in
      let entries = ref 0 in
      let count_tree tree =
        incr structures;
        let es, ps = walk_tree acc tree in
        pages := !pages + ps;
        entries := !entries + List.length es
      in
      (* checksum pass first: it points at damaged pages even when the
         structural walks above them cannot proceed *)
      ignore (walk_pager acc db.Twigmatch.Database.pager);
      let region = Region.build db.Twigmatch.Database.doc in
      let edge = db.Twigmatch.Database.edge in
      let dict = db.Twigmatch.Database.dict in
      let catalog = db.Twigmatch.Database.catalog in
      let doc = db.Twigmatch.Database.doc in
      (* edge table: three link/value indices + the base heap *)
      List.iter count_tree (Edge_table.indices edge);
      incr structures;
      pages := !pages + walk_heap acc (Edge_table.heap edge);
      entries := !entries + Heap_file.record_count (Edge_table.heap edge);
      (* family members: full structural + codec + semantic checks *)
      let check_fam fam =
        incr structures;
        pages := !pages + check_family acc fam ~dict ~catalog ~edge ~region doc;
        entries := !entries + Family.entry_count fam
      in
      Option.iter check_fam db.Twigmatch.Database.rootpaths;
      Option.iter check_fam db.Twigmatch.Database.datapaths;
      Option.iter check_fam db.Twigmatch.Database.dataguide;
      Option.iter check_fam db.Twigmatch.Database.index_fabric;
      (* ASR / Join Index baselines: per-relation structural checks *)
      Option.iter (fun a -> List.iter count_tree (Asr.trees a)) db.Twigmatch.Database.asr_rels;
      Option.iter (fun j -> List.iter count_tree (Join_index.trees j)) db.Twigmatch.Database.ji;
      {
        violations = List.rev acc.vs;
        summary = { structures = !structures; pages = !pages; entries = !entries };
      })

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let location_to_string loc =
  let parts = [ loc.structure ] in
  let parts = match loc.page with Some p -> Printf.sprintf "page %d" p :: parts | None -> parts in
  let parts =
    match loc.entry with Some e -> Printf.sprintf "entry %d" e :: parts | None -> parts
  in
  let parts = match loc.key with Some k -> Printf.sprintf "key \"%s\"" k :: parts | None -> parts in
  String.concat " " (List.rev parts)

let report_to_string r =
  let head =
    Printf.sprintf "fsck: %s — %d structures, %d pages, %d entries checked"
      (match r.violations with
      | [] -> "clean"
      | vs -> Printf.sprintf "%d violation(s)" (List.length vs))
      r.summary.structures r.summary.pages r.summary.entries
  in
  let line v =
    Printf.sprintf "[%s] %s: %s" (code_name v.code) (location_to_string v.loc) v.detail
  in
  String.concat "\n" (head :: List.map line r.violations)

(* Minimal JSON writing, following Tm_obs.Export's conventions. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""
let json_opt_int = function Some i -> string_of_int i | None -> "null"
let json_opt_string = function Some s -> json_string s | None -> "null"

let report_to_json r =
  let violation v =
    Printf.sprintf "{\"code\":%s,\"structure\":%s,\"page\":%s,\"entry\":%s,\"key\":%s,\"detail\":%s}"
      (json_string (code_name v.code))
      (json_string v.loc.structure) (json_opt_int v.loc.page) (json_opt_int v.loc.entry)
      (json_opt_string v.loc.key) (json_string v.detail)
  in
  Printf.sprintf "{\"clean\":%b,\"summary\":{\"structures\":%d,\"pages\":%d,\"entries\":%d},\"violations\":[%s]}"
    (is_clean r) r.summary.structures r.summary.pages r.summary.entries
    (String.concat "," (List.map violation r.violations))
