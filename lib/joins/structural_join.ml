(** Stack-based structural (containment) semi-join, after the
    Stack-Tree family of Al-Khalifa et al. and the merge joins of
    Zhang et al. — reference [34]/[1] of the paper.

    Both inputs are start-sorted candidate lists; one merge pass with a
    stack of open ancestors produces, in O(|anc| + |desc| + output),
    the ancestors having at least one matching descendant and the
    descendants having at least one matching ancestor. *)

open Tm_xmldb

type axis = Child | Descendant

(* A stack entry: (ancestor id, already emitted?). *)
type entry = { anc : int; mutable hit : bool }

(** [semijoin region ~axis ~ancs ~descs] is
    [(ancs with a matching desc, descs with a matching anc)], both
    start-sorted. [Child] requires adjacent levels. *)
let semijoin region ~axis ~ancs ~descs =
  let matched_ancs = ref [] and matched_descs = ref [] in
  let stack : entry list ref = ref [] in
  let pop_closed pos =
    (* remove ancestors whose region ended before [pos] *)
    stack := List.filter (fun e -> pos <= Region.end_of region e.anc) !stack
  in
  let mark_anc e =
    if not e.hit then begin
      e.hit <- true;
      matched_ancs := e.anc :: !matched_ancs
    end
  in
  let on_desc d =
    pop_closed d;
    (* strict containment: a node occurring in both lists (self-join)
       is not its own ancestor *)
    let open_ancs = List.filter (fun e -> e.anc < d) !stack in
    match axis with
    | Descendant -> (
      match open_ancs with
      | [] -> ()
      | _ :: _ ->
        matched_descs := d :: !matched_descs;
        (* every open ancestor contains d *)
        List.iter mark_anc open_ancs)
    | Child -> (
      let want = Region.level_of region d - 1 in
      match List.find_opt (fun e -> Region.level_of region e.anc = want) open_ancs with
      | Some e ->
        matched_descs := d :: !matched_descs;
        mark_anc e
      | None -> ())
  in
  let on_anc a = stack := { anc = a; hit = false } :: !stack in
  (* merge by start position; an ancestor at the same position opens
     before any descendant is tested (ids are unique, so ties cannot
     actually occur between the two lists unless a node plays both
     roles, in which case strict containment excludes self-pairs and
     opening first is harmless) *)
  let rec merge ancs descs =
    match (ancs, descs) with
    | [], [] -> ()
    | a :: ancs', d :: _ when a <= d ->
      pop_closed a;
      on_anc a;
      merge ancs' descs
    | _, d :: descs' ->
      on_desc d;
      merge ancs descs'
    | a :: ancs', [] ->
      pop_closed a;
      on_anc a;
      merge ancs' []
  in
  merge ancs descs;
  (List.sort Int.compare !matched_ancs, List.rev !matched_descs)

(** All (anc, desc) pairs — the full structural join (used by tests;
    the engines only need semi-joins). *)
let join region ~axis ~ancs ~descs =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun d ->
          let ok =
            match axis with
            | Descendant -> Region.is_ancestor region ~anc:a ~desc:d
            | Child -> Region.is_parent region ~parent:a ~child:d
          in
          if ok then Some (a, d) else None)
        descs)
    ancs
