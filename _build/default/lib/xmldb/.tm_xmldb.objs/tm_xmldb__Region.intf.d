lib/xmldb/region.mli: Tm_xml
