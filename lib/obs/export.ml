(** Exporters over the {!Obs} sink: a human-readable trace tree, JSON
    (traces and metrics), and Prometheus-style text metrics. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON writing                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

(* %h drops trailing zeros but stays locale-independent; JSON floats
   must not be "inf"/"nan", which no duration or bucket bound is. *)
let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

(* ------------------------------------------------------------------ *)
(* Trace rendering                                                     *)
(* ------------------------------------------------------------------ *)

let span_suffix (s : Obs.span) =
  let parts = ref [] in
  let push p = parts := p :: !parts in
  List.iter
    (fun (k, v) -> if not (String.equal k "path") then push (Printf.sprintf "%s=%s" k v))
    s.Obs.s_meta;
  (match Obs.pool_hit_rate s with
  | Some r ->
    push
      (Printf.sprintf "pool=%.1f%% (%d hit/%d miss)" (100.0 *. r)
         (Obs.span_count "buffer_pool.hits" s)
         (Obs.span_count "buffer_pool.misses" s))
  | None -> ());
  (match s.Obs.s_gc with
  | Some g when g.Obs.g_minor_words > 0.0 || g.Obs.g_major_words > 0.0 ->
    let words w =
      if w >= 1e6 then Printf.sprintf "%.1fMw" (w /. 1e6)
      else if w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
      else Printf.sprintf "%.0fw" w
    in
    push
      (Printf.sprintf "alloc=%s%s" (words g.Obs.g_minor_words)
         (if g.Obs.g_minor_gcs + g.Obs.g_major_gcs > 0 then
            Printf.sprintf " gc=%d+%d" g.Obs.g_minor_gcs g.Obs.g_major_gcs
          else ""))
  | Some _ | None -> ());
  let interesting =
    List.filter
      (fun (k, _) -> not (String.length k >= 12 && String.equal (String.sub k 0 12) "buffer_pool."))
      s.Obs.s_counts
  in
  (match interesting with
  | [] -> ()
  | _ :: _ ->
    push
      ("["
      ^ String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) interesting)
      ^ "]"));
  String.concat "  " (List.rev !parts)

(* Index-nested-loop plans open one probe span per binding; past this
   many consecutive same-named siblings the tail is folded into one
   aggregate line so analyze output stays readable. *)
let sibling_fold_threshold = 8
let sibling_fold_keep = 3

(* A rendering item: a real span, or a folded run of same-named ones. *)
type render_item = Span of Obs.span | Folded of string * int * float

let fold_siblings children =
  let runs =
    List.fold_left
      (fun acc (c : Obs.span) ->
        match acc with
        | (name, run) :: rest when String.equal name c.Obs.s_name ->
          (name, c :: run) :: rest
        | _ -> (c.Obs.s_name, [ c ]) :: acc)
      [] children
    |> List.rev_map (fun (name, run) -> (name, List.rev run))
  in
  List.concat_map
    (fun (name, run) ->
      if List.length run <= sibling_fold_threshold then List.map (fun s -> Span s) run
      else begin
        let rec split k = function
          | rest when k = 0 -> ([], rest)
          | x :: rest ->
            let kept, folded = split (k - 1) rest in
            (x :: kept, folded)
          | [] -> ([], [])
        in
        let kept, folded = split sibling_fold_keep run in
        let total_ms =
          List.fold_left (fun acc s -> acc +. Obs.elapsed_ms s) 0.0 folded
        in
        List.map (fun s -> Span s) kept @ [ Folded (name, List.length folded, total_ms) ]
      end)
    runs

let rec render_span buf prefix connector (s : Obs.span) =
  let label =
    match List.assoc_opt "path" s.Obs.s_meta with
    | Some p -> Printf.sprintf "%s %s" s.Obs.s_name p
    | None -> s.Obs.s_name
  in
  Buffer.add_string buf
    (Printf.sprintf "%s%s%-40s %8.2f ms  %s\n" prefix connector label (Obs.elapsed_ms s)
       (span_suffix s));
  let child_prefix =
    match connector with
    | "" -> prefix
    | "└─ " -> prefix ^ "   "
    | _ -> prefix ^ "│  "
  in
  let render_item connector = function
    | Span c -> render_span buf child_prefix connector c
    | Folded (name, n, ms) ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s%-40s %8.2f ms\n" child_prefix connector
           (Printf.sprintf "… %d more %s" n name)
           ms)
  in
  let rec go = function
    | [] -> ()
    | [ last ] -> render_item "└─ " last
    | c :: rest ->
      render_item "├─ " c;
      go rest
  in
  go (fold_siblings s.Obs.s_children)

let trace_to_string (s : Obs.span) =
  let buf = Buffer.create 512 in
  render_span buf "" "" s;
  Buffer.contents buf

let pp_trace ppf s = Format.pp_print_string ppf (trace_to_string s)

let rec span_to_json (s : Obs.span) =
  let fields =
    [
      ("name", json_string s.Obs.s_name);
      ("elapsed_ms", json_float (Obs.elapsed_ms s));
      ( "meta",
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> json_string k ^ ":" ^ json_string v) s.Obs.s_meta)
        ^ "}" );
      ( "counts",
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> json_string k ^ ":" ^ string_of_int v) s.Obs.s_counts)
        ^ "}" );
      ( "gc",
        match s.Obs.s_gc with
        | None -> "null"
        | Some g ->
          Printf.sprintf
            "{\"minor_words\":%s,\"major_words\":%s,\"minor_gcs\":%d,\"major_gcs\":%d}"
            (json_float g.Obs.g_minor_words) (json_float g.Obs.g_major_words) g.Obs.g_minor_gcs
            g.Obs.g_major_gcs );
      ("children", "[" ^ String.concat "," (List.map span_to_json s.Obs.s_children) ^ "]");
    ]
  in
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields) ^ "}"

let trace_to_json s = span_to_json s

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

(* The "complete" ("ph":"X") flavour of the Chrome trace-event format:
   one event per span with ts/dur in microseconds, ts relative to the
   root span's open time. Worker-domain spans grafted via [Obs.adopt]
   were stamped by the same monotonic clock, so their relative offsets
   line up on the Perfetto timeline. *)
let trace_to_chrome (root : Obs.span) =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '[';
  let first = ref true in
  let us_of_ns ns = Int64.to_float ns /. 1e3 in
  let rec emit (s : Obs.span) =
    if not !first then Buffer.add_char buf ',';
    first := false;
    let args =
      List.map (fun (k, v) -> json_string k ^ ":" ^ json_string v) s.Obs.s_meta
      @ List.map (fun (k, v) -> json_string k ^ ":" ^ string_of_int v) s.Obs.s_counts
      @ (match s.Obs.s_gc with
        | Some g ->
          [
            "\"gc_minor_words\":" ^ json_float g.Obs.g_minor_words;
            "\"gc_major_words\":" ^ json_float g.Obs.g_major_words;
            "\"gc_minor_gcs\":" ^ string_of_int g.Obs.g_minor_gcs;
            "\"gc_major_gcs\":" ^ string_of_int g.Obs.g_major_gcs;
          ]
        | None -> [])
    in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\":%s,\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%s,\"dur\":%s,\"args\":{%s}}"
         (json_string s.Obs.s_name)
         (json_float (us_of_ns (Int64.sub s.Obs.s_start_ns root.Obs.s_start_ns)))
         (json_float (us_of_ns s.Obs.s_elapsed_ns))
         (String.concat "," args));
    List.iter emit s.Obs.s_children
  in
  emit root;
  Buffer.add_char buf ']';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Flight-recorder timelines                                           *)
(* ------------------------------------------------------------------ *)

let flight_event_to_json (e : Flight.event) =
  String.concat ""
    [
      "{";
      Printf.sprintf "\"domain\":%d," e.Flight.e_domain;
      Printf.sprintf "\"seq\":%d," e.Flight.e_seq;
      Printf.sprintf "\"ts_ns\":%d," e.Flight.e_ts_ns;
      Printf.sprintf "\"trace\":%s," (if e.Flight.e_trace = 0 then "null" else string_of_int e.Flight.e_trace);
      Printf.sprintf "\"kind\":%s," (json_string (Flight.kind_name e.Flight.e_kind));
      Printf.sprintf "\"a\":%d," e.Flight.e_a;
      Printf.sprintf "\"b\":%d," e.Flight.e_b;
      Printf.sprintf "\"detail\":%s" (json_string e.Flight.e_detail);
      "}";
    ]

let flight_to_json events = "[" ^ String.concat "," (List.map flight_event_to_json events) ^ "]"

(* The merged-timeline Chrome export: every domain becomes one [tid] on
   a shared clock, so Perfetto shows the accept domain, the workers and
   the WAL on parallel tracks. Paired lifecycle events render as
   duration begin/end slices; everything else is an instant. Events of
   one request share [args.trace], which is how a 429 or a breaker flip
   is stitched back to the query that caused it. *)
let flight_to_chrome events =
  let buf = Buffer.create 4096 in
  Buffer.add_char buf '[';
  let t0 = match events with e :: _ -> e.Flight.e_ts_ns | [] -> 0 in
  let first = ref true in
  let add_event (e : Flight.event) ~ph ~name =
    if not !first then Buffer.add_char buf ',';
    first := false;
    let args =
      List.concat
        [
          (if e.Flight.e_trace = 0 then []
           else [ "\"trace\":" ^ string_of_int e.Flight.e_trace ]);
          [ "\"seq\":" ^ string_of_int e.Flight.e_seq ];
          (if e.Flight.e_a = 0 then [] else [ "\"a\":" ^ string_of_int e.Flight.e_a ]);
          (if e.Flight.e_b = 0 then [] else [ "\"b\":" ^ string_of_int e.Flight.e_b ]);
          (if String.equal e.Flight.e_detail "" then []
           else [ "\"detail\":" ^ json_string e.Flight.e_detail ]);
        ]
    in
    Buffer.add_string buf
      (Printf.sprintf "{\"name\":%s,\"ph\":%s,\"pid\":1,\"tid\":%d,\"ts\":%s%s,\"args\":{%s}}"
         (json_string name) (json_string ph) e.Flight.e_domain
         (json_float (float_of_int (e.Flight.e_ts_ns - t0) /. 1e3))
         (if String.equal ph "i" then ",\"s\":\"t\"" else "")
         (String.concat "," args))
  in
  List.iter
    (fun (e : Flight.event) ->
      let name k =
        if String.equal e.Flight.e_detail "" then Flight.kind_name k else e.Flight.e_detail
      in
      match e.Flight.e_kind with
      | Flight.Span_begin -> add_event e ~ph:"B" ~name:(name e.Flight.e_kind)
      | Flight.Span_end -> add_event e ~ph:"E" ~name:(name e.Flight.e_kind)
      | Flight.Query_begin -> add_event e ~ph:"B" ~name:"query"
      | Flight.Query_end -> add_event e ~ph:"E" ~name:"query"
      | Flight.Req_begin -> add_event e ~ph:"B" ~name:"request"
      | Flight.Req_end -> add_event e ~ph:"E" ~name:"request"
      | Flight.Task_begin -> add_event e ~ph:"B" ~name:"task"
      | Flight.Task_end -> add_event e ~ph:"E" ~name:"task"
      | k -> add_event e ~ph:"i" ~name:(Flight.kind_name k))
    events;
  Buffer.add_char buf ']';
  Buffer.contents buf

(* The recorder's own health, visible to scrapes like the journal's.
   Registered here because {!Flight} sits below {!Obs}. *)
let () =
  Obs.gauge "flight.enabled" (fun () -> if Flight.enabled () then 1.0 else 0.0);
  Obs.gauge "flight.events" (fun () -> float_of_int (Flight.total_events ()))

(* ------------------------------------------------------------------ *)
(* Histogram quantiles                                                 *)
(* ------------------------------------------------------------------ *)

(* Prometheus histogram_quantile estimation: find the bucket where the
   cumulative count crosses q*total and interpolate linearly inside it.
   The overflow bucket has no upper bound, so it reports its lower
   bound (the largest finite bound) — an underestimate, like
   Prometheus, which is why the bench buckets extend well past
   expected tails. *)
let quantile_of_counts ~(bounds : float array) ~(counts : int array) q =
  if q < 0.0 || q > 1.0 then invalid_arg "Export.quantile_of_counts: q outside [0,1]";
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then None
  else begin
    let rank = q *. float_of_int total in
    let rec find i cumulative =
      if i >= Array.length counts - 1 then
        (* overflow bucket: clamp to the largest finite bound *)
        Some (if Array.length bounds = 0 then 0.0 else bounds.(Array.length bounds - 1))
      else begin
        let cumulative' = cumulative + counts.(i) in
        if float_of_int cumulative' >= rank then begin
          let lower = if i = 0 then 0.0 else bounds.(i - 1) in
          let upper = bounds.(i) in
          if counts.(i) = 0 then Some upper
          else
            let frac = (rank -. float_of_int cumulative) /. float_of_int counts.(i) in
            Some (lower +. ((upper -. lower) *. frac))
        end
        else find (i + 1) cumulative'
      end
    in
    find 0 0
  end

let quantile (h : Obs.histogram) q = quantile_of_counts ~bounds:h.Obs.h_bounds ~counts:h.Obs.h_counts q

let summary_quantiles = [ (0.5, "p50"); (0.95, "p95"); (0.99, "p99") ]

let summary h =
  List.filter_map (fun (q, label) -> Option.map (fun v -> (label, v)) (quantile h q)) summary_quantiles

(* ------------------------------------------------------------------ *)
(* Derived gauges                                                      *)
(* ------------------------------------------------------------------ *)

(* The buffer pool counts hits/misses per stripe but accumulates them
   into the two global counters; the pool-wide hit rate is derived here
   once at export time rather than maintained on the hot path. *)
let pool_hit_rate () =
  let counters = Obs.counters () in
  let get k = match List.assoc_opt k counters with Some v -> v | None -> 0 in
  let hits = get "buffer_pool.hits" and misses = get "buffer_pool.misses" in
  if hits + misses = 0 then None
  else Some (float_of_int hits /. float_of_int (hits + misses))

(* Every gauge an exporter should surface: registered gauges plus the
   derived pool-wide hit rate. *)
let all_gauges () =
  let derived =
    match pool_hit_rate () with Some r -> [ ("buffer_pool.hit_rate", r) ] | None -> []
  in
  Obs.gauges () @ derived

(* ------------------------------------------------------------------ *)
(* Metrics export                                                      *)
(* ------------------------------------------------------------------ *)

let histogram_to_json (h : Obs.histogram) =
  let buckets =
    Array.to_list
      (Array.mapi
         (fun i n ->
           let le =
             if i < Array.length h.Obs.h_bounds then json_float h.Obs.h_bounds.(i)
             else "\"+Inf\""
           in
           Printf.sprintf "{\"le\":%s,\"count\":%d}" le n)
         h.Obs.h_counts)
  in
  Printf.sprintf "{\"count\":%d,\"sum\":%s,\"buckets\":[%s]}" h.Obs.h_count
    (json_float h.Obs.h_sum) (String.concat "," buckets)

let metrics_to_json ?(extra = []) () =
  let counters =
    Obs.counters ()
    |> List.map (fun (k, v) -> json_string k ^ ":" ^ string_of_int v)
    |> String.concat ","
  in
  let histograms =
    Obs.histograms ()
    |> List.map (fun h ->
           let q =
             summary h
             |> List.map (fun (label, v) -> json_string label ^ ":" ^ json_float v)
             |> String.concat ","
           in
           let body = histogram_to_json h in
           (* graft the quantile summary into the histogram object *)
           let body = String.sub body 0 (String.length body - 1) in
           json_string h.Obs.h_name ^ ":" ^ body
           ^ (if String.equal q "" then "}" else Printf.sprintf ",\"quantiles\":{%s}}" q))
    |> String.concat ","
  in
  let gauges =
    all_gauges ()
    |> List.map (fun (k, v) ->
           json_string k ^ ":" ^ if Float.is_nan v then "null" else json_float v)
    |> String.concat ","
  in
  let extra = List.map (fun (k, v) -> "," ^ json_string k ^ ":" ^ v) extra in
  Printf.sprintf "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}%s}" counters gauges
    histograms
    (String.concat "" extra)

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]* *)
let prometheus_name s =
  "twigmatch_"
  ^ String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_') s

(* Prometheus label values: backslash, double-quote and newline must be
   backslash-escaped inside the quoted value. *)
let prometheus_label_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let metrics_to_prometheus () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, v) ->
      let name = prometheus_name k in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" name name v))
    (Obs.counters ());
  List.iter
    (fun (k, v) ->
      if not (Float.is_nan v) then begin
        let name = prometheus_name k in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %s\n" name name (json_float v))
      end)
    (all_gauges ());
  List.iter
    (fun (h : Obs.histogram) ->
      let name = prometheus_name h.Obs.h_name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
      let cumulative = ref 0 in
      Array.iteri
        (fun i n ->
          cumulative := !cumulative + n;
          let le =
            if i < Array.length h.Obs.h_bounds then Printf.sprintf "%g" h.Obs.h_bounds.(i)
            else "+Inf"
          in
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name le !cumulative))
        h.Obs.h_counts;
      Buffer.add_string buf (Printf.sprintf "%s_sum %g\n" name h.Obs.h_sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name h.Obs.h_count))
    (Obs.histograms ());
  Buffer.contents buf
