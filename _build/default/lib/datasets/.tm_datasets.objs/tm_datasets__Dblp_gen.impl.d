lib/datasets/dblp_gen.ml: Array List Printf Random String Tm_xml
