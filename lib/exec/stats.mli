(** Per-query execution statistics: the cost drivers behind each
    figure's shape. *)

type t = {
  mutable index_lookups : int;  (** B+-tree probes / scans started *)
  mutable entries_scanned : int;  (** index entries touched *)
  mutable rows_produced : int;  (** rows materialized by joins *)
  mutable join_steps : int;  (** joins executed *)
  mutable inlj_probes : int;  (** index-nested-loop probes *)
  mutable structures_accessed : int;  (** distinct structures touched (ASR/JI) *)
  mutable replans : int;  (** mid-query plan abandonments (adaptive replanning) *)
}

val create : unit -> t
val add : t -> t -> t

val merge_into : into:t -> t -> unit
(** Accumulate [b] into [into] in place (for folding per-task stats
    from parallel path evaluation back into the query's record). *)

val pp : Format.formatter -> t -> unit
