(** Database snapshots: save a built database (document, dictionary,
    catalog, every index's pages and metadata) to a file and reload it
    without re-shredding or re-bulk-loading.

    Format v2 is framed so a damaged file is {e detected}, never fed to
    [Marshal] (which aborts the process on garbage):

    {v
      magic   "TWIGMATCH-SNAPSHOT"
      version u32 = 2
      count   u32                          number of sections
      section (repeated)
        name-len  u32
        name      bytes
        data-len  u32
        data-crc  u32      CRC32 of the payload bytes
        data      bytes
      footer
        end-magic "TWIGEND!"
        table-crc u32      CRC32 over every section's (name, len, crc)
    v}

    Sections today: ["meta"] (small, textual — creation parameters for
    humans and tooling) and ["database"] (the [Marshal] image of the
    {!Database.t}; one section, because the pager, pools and families
    share structure that per-structure marshalling would duplicate and
    un-share). Every payload CRC is verified {e before} any
    unmarshalling, so truncation or a bit flip anywhere yields
    {!Bad_snapshot} naming the failing section. {!verify} runs the
    same frame checks without allocating a database.

    [save] writes to a temp file in the same directory and atomically
    renames it over the target, so a crash mid-save leaves the previous
    snapshot intact — the torn-write crash model at file granularity.

    This is a {e snapshot}, not a write-ahead-logged store: it is only
    readable by the same library version that wrote it, and a crash
    between [save] calls loses the delta — the appropriate scope for a
    reproduction whose substrate "disk" is simulated. Databases built
    with a [head_filter] or [id_keep] closure cannot be snapshotted
    (closures do not survive serialization meaningfully); {!save}
    rejects them. *)

open Tm_storage

let magic = "TWIGMATCH-SNAPSHOT"
let end_magic = "TWIGEND!"
let version = 2

exception Bad_snapshot of string

let () =
  Printexc.register_printer (function
    | Bad_snapshot s -> Some (Printf.sprintf "Bad_snapshot(%s)" s)
    | _ -> None)

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_snapshot s)) fmt

(* [output_binary_int] moves 4 bytes but treats them as signed; mask so
   CRCs (and lengths, defensively) round-trip as unsigned 32-bit. *)
let out_u32 oc n = output_binary_int oc (n land 0xFFFFFFFF)

let in_u32 ic ~what =
  match input_binary_int ic with
  | n -> n land 0xFFFFFFFF
  | exception End_of_file -> bad "truncated while reading %s" what

let in_string ic len ~what =
  match really_input_string ic len with
  | s -> s
  | exception End_of_file -> bad "truncated while reading %s" what

(* CRC over a section table entry, accumulated into the footer CRC. *)
let table_crc_step crc (name, len, data_crc) =
  let buf = Buffer.create 32 in
  Codec.add_lstring buf name;
  Codec.add_u32 buf (len land 0xFFFFFFFF);
  Codec.add_u32 buf (data_crc land 0xFFFFFFFF);
  let s = Buffer.contents buf in
  Codec.crc32_update crc (Bytes.unsafe_of_string s) 0 (String.length s)

let write_frame oc sections =
  output_string oc magic;
  out_u32 oc version;
  out_u32 oc (List.length sections);
  let table_crc =
    List.fold_left
      (fun crc (name, data) ->
        out_u32 oc (String.length name);
        output_string oc name;
        out_u32 oc (String.length data);
        let data_crc = Codec.crc32_string data in
        out_u32 oc data_crc;
        output_string oc data;
        table_crc_step crc (name, String.length data, data_crc))
      0 sections
  in
  output_string oc end_magic;
  out_u32 oc table_crc

(* Walk the frame, handing each section's (name, len, crc, read_payload)
   to [f]; [f] decides whether to consume the payload bytes or skip
   them. Verifies the footer after the last section. *)
let read_frame ic f =
  let m =
    match really_input_string ic (String.length magic) with
    | m -> m
    | exception End_of_file -> bad "not a twigmatch snapshot (file shorter than the magic)"
  in
  if not (String.equal m magic) then bad "not a twigmatch snapshot";
  let v = in_u32 ic ~what:"version" in
  if v <> version then bad "snapshot version %d, expected %d" v version;
  let count = in_u32 ic ~what:"section count" in
  if count > 0xFFFF then bad "implausible section count %d (corrupt header)" count;
  let table_crc = ref 0 in
  for _ = 1 to count do
    let name_len = in_u32 ic ~what:"section name length" in
    if name_len > 0xFFFF then bad "implausible section name length %d (corrupt header)" name_len;
    let name = in_string ic name_len ~what:"section name" in
    let len = in_u32 ic ~what:(Printf.sprintf "section %S length" name) in
    let crc = in_u32 ic ~what:(Printf.sprintf "section %S checksum" name) in
    table_crc := table_crc_step !table_crc (name, len, crc);
    f ~name ~len ~crc ic
  done;
  let em = in_string ic (String.length end_magic) ~what:"footer magic" in
  if not (String.equal em end_magic) then bad "bad footer magic (truncated or overwritten tail)";
  let fc = in_u32 ic ~what:"footer checksum" in
  if fc <> !table_crc land 0xFFFFFFFF then bad "footer checksum mismatch (section table damaged)"

let read_section_checked ic ~name ~len ~crc =
  let data = in_string ic len ~what:(Printf.sprintf "section %S payload" name) in
  if Codec.crc32_string data <> crc then
    bad "section %S failed its checksum (corrupt payload)" name;
  data

let skip_section_checked ic ~name ~len ~crc =
  (* Stream the CRC in page-sized chunks: verify without holding the
     payload (the [verify] path must not need section-sized memory). *)
  let chunk = Bytes.create 8192 in
  let rec go remaining acc =
    if remaining = 0 then acc
    else begin
      let n = min remaining (Bytes.length chunk) in
      (try really_input ic chunk 0 n
       with End_of_file -> bad "truncated inside section %S payload" name);
      go (remaining - n) (Codec.crc32_update acc chunk 0 n)
    end
  in
  if go len 0 <> crc then bad "section %S failed its checksum (corrupt payload)" name

let meta_of (db : Database.t) =
  let b = Buffer.create 128 in
  Printf.bprintf b "format=twigmatch-snapshot v%d\n" version;
  Printf.bprintf b "strategies=%s\n"
    (String.concat "," (List.map Database.strategy_name (Database.built_strategies db)));
  Printf.bprintf b "last_txn=%d\n" db.Database.last_txn;
  Buffer.contents b

(* Directory-entry durability: after a rename, the new name survives a
   power loss only once the directory itself is fsynced. Filesystems
   that refuse fsync on a directory descriptor (EINVAL/ENOTSUP) order
   metadata themselves and need no help. *)
let fsync_dir dir =
  let fd = Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      try Unix.fsync fd
      with Unix.Unix_error ((Unix.EINVAL | Unix.EROFS | Unix.EOPNOTSUPP), _, _) -> ())

let save (db : Database.t) path =
  let image =
    try Marshal.to_string db []
    with Invalid_argument _ ->
      raise
        (Bad_snapshot
           "database contains closures (head_filter / id_keep); pruned databases cannot be \
            snapshotted")
  in
  let tmp = Filename.temp_file ~temp_dir:(Filename.dirname path) ".twigmatch-snapshot" ".tmp" in
  let ok = ref false in
  Fun.protect
    ~finally:(fun () -> if not !ok then Sys.remove tmp)
    (fun () ->
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          write_frame oc [ ("meta", meta_of db); ("database", image) ];
          (* Durability order: the tmp file's bytes must be on disk
             before the rename publishes them — otherwise a crash could
             leave the target name pointing at an empty or partial
             inode, which is worse than the old snapshot the rename was
             supposed to preserve. *)
          flush oc;
          Unix.fsync (Unix.descr_of_out_channel oc));
      (* The write is durable only as a whole: rename is atomic, so the
         target path always holds either the old snapshot or the
         complete new one, never a prefix. *)
      Sys.rename tmp path;
      (* ... and the rename itself is durable only once the directory
         entry is: callers (checkpoint in particular) may destroy the
         data that backs the old snapshot as soon as we return. *)
      fsync_dir (Filename.dirname path);
      ok := true)

let with_snapshot path f =
  let ic =
    try open_in_bin path with Sys_error e -> bad "cannot open snapshot: %s" e
  in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let load path : Database.t =
  with_snapshot path (fun ic ->
      let image = ref None in
      read_frame ic (fun ~name ~len ~crc ic ->
          let data = read_section_checked ic ~name ~len ~crc in
          if String.equal name "database" then image := Some data);
      match !image with
      | None -> bad "no %S section in snapshot" "database"
      | Some data ->
        (* The frame walk above has verified length and CRC of every
           byte we are about to unmarshal; Marshal never sees a
           damaged image. *)
        (Marshal.from_string data 0 : Database.t))

type section = { name : string; length : int; crc : int }
type summary = { sections : section list }

let verify path =
  with_snapshot path (fun ic ->
      let acc = ref [] in
      read_frame ic (fun ~name ~len ~crc ic ->
          skip_section_checked ic ~name ~len ~crc;
          acc := { name; length = len; crc } :: !acc);
      { sections = List.rev !acc })
