lib/query/decompose.mli: Twig
