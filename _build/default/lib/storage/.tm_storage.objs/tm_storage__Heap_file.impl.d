lib/storage/heap_file.ml: Array Buffer Buffer_pool Bytes Codec List Pager Printf String
