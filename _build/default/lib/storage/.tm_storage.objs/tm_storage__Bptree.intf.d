lib/storage/bptree.mli: Buffer_pool
