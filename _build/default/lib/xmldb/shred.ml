(** Single shredding pass over a document.

    Everything relational in this system — the Edge table, the schema
    catalog, the 4-ary path relation behind ROOTPATHS/DATAPATHS, the ASR
    and Join-Index relations — is derived from one traversal that visits
    every element/attribute node together with its rooted schema path
    and rooted id list. *)

type node_info = {
  id : int;  (** this node's id *)
  tag : int;  (** this node's tag id (interned) *)
  parent_id : int;  (** 0 for document roots (the virtual root) *)
  parent_tag : int;  (** -1 for document roots *)
  path : Schema_path.t;  (** rooted schema path, ending at this node *)
  ids : int array;  (** rooted id list [i1..ik]; [ids.(k-1) = id] *)
  value : string option;  (** leaf value directly under this node, if any *)
}

(** Fold [f] over every element/attribute node in document order,
    interning tags into [dict] as they are first seen. *)
let fold_nodes (doc : Tm_xml.Xml_tree.document) dict f acc =
  let module T = Tm_xml.Xml_tree in
  (* rev_tags / rev_ids are the ancestor chain including the current node,
     nearest first. *)
  let rec go ~rev_tags ~rev_ids ~parent_id ~parent_tag acc (node : T.node) =
    match node.T.label with
    | T.Value _ -> acc
    | T.Elem name | T.Attr name ->
      let tag = Dictionary.intern dict name in
      let rev_tags = tag :: rev_tags in
      let rev_ids = node.T.id :: rev_ids in
      let info =
        {
          id = node.T.id;
          tag;
          parent_id;
          parent_tag;
          path = Schema_path.of_list (List.rev rev_tags);
          ids = Array.of_list (List.rev rev_ids);
          value = T.leaf_value node;
        }
      in
      let acc = f acc info in
      Array.fold_left
        (go ~rev_tags ~rev_ids ~parent_id:node.T.id ~parent_tag:tag)
        acc node.T.children
  in
  Array.fold_left
    (go ~rev_tags:[] ~rev_ids:[] ~parent_id:doc.T.virtual_root_id ~parent_tag:(-1))
    acc doc.T.roots

let iter_nodes doc dict f = fold_nodes doc dict (fun () info -> f info) ()
