(** The unified family of path indices (paper Section 3, Figure 3).

    A member stores a subset of the 4-ary relation's schema paths, a
    sublist of each IdList, and indexes a choice of columns. ROOTPATHS,
    DATAPATHS, the DataGuide and the Index Fabric are provided as
    configurations; the Section 4 compressions are build options. *)

type path_subset =
  | Root_prefixes  (** prefixes of root-to-leaf paths (head = virtual root) *)
  | Root_to_leaf_only  (** only paths reaching a leaf value *)
  | All_subpaths  (** every (ancestor-or-self head, descendant) subpath *)

type id_sublist = Last_id | First_id | Full_idlist

type component =
  | Head  (** fixed-width big-endian head id *)
  | Value  (** escaped leaf value; null = empty component *)
  | Schema_fwd  (** designators, root-to-leaf order *)
  | Schema_rev  (** designators, leaf-to-root order (suffix matching) *)
  | Schema_id  (** catalog path id (Section 4.2); no [//] support *)

type config = {
  cfg_name : string;
  paths : path_subset;
  ids : id_sublist;
  key : component list;
}

val dataguide : config
val index_fabric : config
val rootpaths : config
val datapaths : config
val rootpaths_schema_compressed : config
val datapaths_schema_compressed : config

type t

val build :
  ?idlist_codec:[ `Delta | `Raw ] ->
  ?prefix_compression:bool ->
  ?head_filter:(int -> bool) ->
  ?id_keep:(Tm_xmldb.Path_relation.row -> int list -> int list) ->
  ?par:Tm_par.Pool.t ->
  pool:Tm_storage.Buffer_pool.t ->
  dict:Tm_xmldb.Dictionary.t ->
  catalog:Tm_xmldb.Schema_catalog.t ->
  config ->
  Tm_xml.Xml_tree.document ->
  t
(** Build a family member. [idlist_codec] selects the Section 4.1
    encoding ([`Delta] default); [prefix_compression] (default true)
    toggles B+-tree leaf front-coding — the DB2 feature the paper
    credits for key-space efficiency; [head_filter] implements Section 4.3
    HeadId pruning (the virtual root is always kept); [id_keep]
    implements Section 4.1 IdList pruning. [par] parallelizes entry
    generation and sorting across the pool's domains (node-partitioned
    sorted runs, merged before the bulk load — the result is
    byte-identical to the sequential build). *)

val tree : t -> Tm_storage.Bptree.t
val config : t -> config
val size_bytes : t -> int
val entry_count : t -> int

val insert_node : t -> Tm_xmldb.Shred.node_info -> unit
(** Incremental maintenance (paper Section 7): add the rows one node
    contributes under this member's layout, respecting the build-time
    compression options. *)

val remove_node : t -> Tm_xmldb.Shred.node_info -> unit

(** {1 Probing} *)

type schema_probe =
  | Exact of Tm_xmldb.Schema_path.t  (** full head-anchored path *)
  | Suffix of Tm_xmldb.Schema_path.t  (** paths ending with these tags ([//]) *)
  | Any_schema

type hit = {
  h_schema : Tm_xmldb.Schema_path.t;
  h_value : string option;
  h_ids : int list;  (** the stored id sublist *)
}

exception Unsupported of string
(** The member's key layout cannot answer this probe shape (e.g. a
    [Suffix] probe on forward or dictionary-encoded schema keys, or a
    missing head on a head-keyed member). *)

val scan :
  t ->
  ?head:int ->
  ?value:string option ->
  ?exact_len:int ->
  schema:schema_probe ->
  ('a -> hit -> 'a) ->
  'a ->
  'a
(** One index lookup. [~value:(Some v)] selects value rows, [~value:None]
    the structural (null) rows; omitting it leaves the value
    unconstrained. [exact_len] additionally requires the matched schema
    path length. @raise Unsupported per the member's layout. *)

val probe_cost : t -> ?head:int -> ?value:string option -> schema:schema_probe -> unit -> int
(** Entries a probe touches (estimation/accounting helper). *)

type vbound = string * bool
(** One bound of a value-range probe: (value, inclusive). *)

val scan_value_range :
  t ->
  ?head:int ->
  lo:vbound option ->
  hi:vbound option ->
  schema:schema_probe ->
  ('a -> hit -> 'a) ->
  'a ->
  'a
(** Range scan over the [Value] component (lexicographic bounds) — the
    "complex conditions on values" extension of paper Section 7,
    contiguous thanks to value-first key order.
    @raise Unsupported when the member's key lacks a [Value] component. *)

(** {1 Fsck support}

    Decoders and the recomputable ground truth that let {!Tm_check.Check}
    verify a member entry by entry without going through the scan API. *)

val decode_entry_key : t -> string -> int option * string option * Tm_xmldb.Schema_path.t
(** Decode a stored key into (head, value, schema) per the member's
    layout. @raise Invalid_argument on a malformed key. *)

val decode_idlist : t -> string -> int list
(** Decode a stored payload under the member's IdList codec. *)

val encode_idlist : t -> int list -> string
(** Canonical payload encoding (re-encode round-trip checks). *)

val expected_entries :
  t -> dict:Tm_xmldb.Dictionary.t -> Tm_xml.Xml_tree.document -> (string * string) list
(** The sorted (key, payload) multiset the member must hold for a
    document under its layout and pruning options — exactly [build]'s
    bulk-load input, recomputed. *)
