(** Append-only heap file of variable-length records over pages.

    Used for base relations (the Edge table and ASR relations). Records
    are byte strings identified by a {!rid} (page id, slot). Page layout:
    ['H'], u16 record count, then length-prefixed records back to back.
    A record never spans pages; records larger than a page are refused. *)

type rid = { page : int; slot : int }

(* File-level metadata, immutable and swapped wholesale (same
   discipline as {!Bptree.meta}): a transactional writer stages a
   private copy, published by one pointer write at commit, so
   epoch-pinned readers never see half-updated fill state. *)
type meta = {
  pages : int list; (* all pages, newest first *)
  current : int; (* page being filled, -1 if none *)
  current_used : int;
  current_count : int;
  n_records : int;
  n_pages : int;
}

type t = {
  pool : Buffer_pool.t;
  page_size : int;
  mutable meta : meta;
  mutable staged : meta option;
  name : string;
}

let in_txn_writer t = Buffer_pool.in_txn_writer t.pool

let m t =
  if in_txn_writer t then
    match t.staged with Some s -> s | None -> t.meta
  else t.meta

let set_m t mt =
  if in_txn_writer t then begin
    (match t.staged with
    | Some _ -> ()
    | None ->
      Buffer_pool.add_participant t.pool (fun ~committed ->
          (match t.staged with
          | Some s when committed -> t.meta <- s
          | Some _ | None -> ());
          t.staged <- None));
    t.staged <- Some mt
  end
  else t.meta <- mt

let create ~name pool =
  {
    pool;
    page_size = Pager.page_size (Buffer_pool.pager pool);
    meta =
      { pages = []; current = -1; current_used = 0; current_count = 0; n_records = 0; n_pages = 0 };
    staged = None;
    name;
  }

let name t = t.name
let record_count t = (m t).n_records
let page_count t = (m t).n_pages
let size_bytes t = (m t).n_pages * t.page_size

let header_size = 3 (* tag + u16 count *)

let decode_page bytes =
  let s = Bytes.to_string bytes in
  if String.length s = 0 || s.[0] <> 'H' then [||]
  else begin
    let count, pos = Codec.read_u16 s 1 in
    let records = Array.make count "" in
    let pos = ref pos in
    for i = 0 to count - 1 do
      let r, p = Codec.read_lstring s !pos in
      records.(i) <- r;
      pos := p
    done;
    records
  end

let encode_page records =
  let buf = Buffer.create 256 in
  Buffer.add_char buf 'H';
  Codec.add_u16 buf (List.length records);
  List.iter (Codec.add_lstring buf) records;
  Buffer.contents buf

(** Append a record; returns its rid. *)
let append t record =
  let rsize = String.length record + 5 in
  if rsize + header_size > t.page_size then
    invalid_arg (Printf.sprintf "Heap_file.append(%s): record too large (%d bytes)" t.name rsize);
  let mt = m t in
  let mt =
    if mt.current = -1 || mt.current_used + rsize > t.page_size then begin
      let page = Buffer_pool.alloc t.pool in
      {
        mt with
        current = page;
        current_used = header_size;
        current_count = 0;
        pages = page :: mt.pages;
        n_pages = mt.n_pages + 1;
      }
    end
    else mt
  in
  let existing = Array.to_list (decode_page (Buffer_pool.read t.pool mt.current)) in
  let records = existing @ [ record ] in
  Buffer_pool.write t.pool mt.current (Bytes.of_string (encode_page records));
  let slot = mt.current_count in
  set_m t
    {
      mt with
      current_used = mt.current_used + rsize;
      current_count = mt.current_count + 1;
      n_records = mt.n_records + 1;
    };
  { page = mt.current; slot }

(** Fetch the record at [rid]. *)
let get t rid =
  let records = decode_page (Buffer_pool.read t.pool rid.page) in
  if rid.slot >= Array.length records then
    invalid_arg (Printf.sprintf "Heap_file.get(%s): bad rid" t.name);
  records.(rid.slot)

(** Pages in allocation order (fsck support). *)
let pages t = List.rev (m t).pages

(** Decode one page afresh, refusing rather than masking a bad image:
    [decode_page] treats a bad header as empty (tolerable for reads
    after a crash), but an offline checker must report it. *)
let records_of_page t page =
  match Buffer_pool.read t.pool page with
  | exception Invalid_argument m -> Error m
  | bytes ->
    let s = Bytes.to_string bytes in
    if String.length s = 0 || s.[0] <> 'H' then
      Error (Printf.sprintf "bad heap page header (%s)" t.name)
    else (
      match decode_page bytes with
      | records -> Ok records
      | exception Invalid_argument m -> Error m
      | exception Failure m -> Error m)

(** Fold over all records in insertion order. *)
let fold t f acc =
  List.fold_left
    (fun acc page ->
      Array.fold_left (fun acc r -> f acc r) acc (decode_page (Buffer_pool.read t.pool page)))
    acc
    (List.rev (m t).pages)

let iter t f = fold t (fun () r -> f r) ()
