(** Query twig patterns (paper Section 2.1): node-labeled trees with
    parent-child and ancestor-descendant edges, optional equality
    predicates on leaf values, and exactly one output node. *)

type axis = Child | Descendant

type bound = { bval : string; binc : bool (** inclusive? *) }
(** One bound of a value range. Comparison is lexicographic. *)

type range = { rlo : bound option; rhi : bound option }
(** Range predicate on a leaf value, e.g. [. >= 'a' and . < 'm']. *)

val range_matches : range -> string -> bool

type node = {
  uid : int;  (** dense pre-order id over the twig *)
  name : string;
  value : string option;  (** equality predicate on the leaf value *)
  range : range option;  (** inequality predicate (never with [value]) *)
  output : bool;
  branches : (axis * node) list;
}

type t = { root_axis : axis; root : node }

(** {1 Construction} *)

type spec = {
  s_name : string;
  s_value : string option;
  s_range : range option;
  s_output : bool;
  s_branches : (axis * spec) list;
}
(** Unnumbered node spec; {!make} assigns uids. *)

val spec : ?value:string -> ?range:range -> ?output:bool -> string -> (axis * spec) list -> spec

val make : axis -> spec -> t
(** @raise Invalid_argument unless exactly one node is the output, or
    if a node carries both an equality and a range predicate. *)

(** {1 Accessors} *)

val fold_nodes : ('a -> node -> 'a) -> 'a -> node -> 'a
val node_count : t -> int
val output_node : t -> node

val branch_nodes : t -> node list
(** Twig nodes where linear paths diverge (the join points): more than
    one branch, or a value/range predicate alongside at least one
    branch. *)

val leaf_count : t -> int
(** Number of leaf-to-root paths — the paper's "number of branches". *)

val has_descendant_edge : t -> bool

val to_string : t -> string
(** Debug rendering in XPath-like syntax. *)

val shape : t -> string
(** Canonical normalized form used as the planner's cache key: tags,
    axes, predicate {e kinds} and the output marker survive; predicate
    literals are erased and sibling branches are sorted, so queries
    differing only in constants (or branch order) share a shape. *)
