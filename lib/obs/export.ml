(** Exporters over the {!Obs} sink: a human-readable trace tree, JSON
    (traces and metrics), and Prometheus-style text metrics. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON writing                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

(* %h drops trailing zeros but stays locale-independent; JSON floats
   must not be "inf"/"nan", which no duration or bucket bound is. *)
let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

(* ------------------------------------------------------------------ *)
(* Trace rendering                                                     *)
(* ------------------------------------------------------------------ *)

let span_suffix (s : Obs.span) =
  let parts = ref [] in
  let push p = parts := p :: !parts in
  List.iter (fun (k, v) -> if k <> "path" then push (Printf.sprintf "%s=%s" k v)) s.Obs.s_meta;
  (match Obs.pool_hit_rate s with
  | Some r ->
    push
      (Printf.sprintf "pool=%.1f%% (%d hit/%d miss)" (100.0 *. r)
         (Obs.span_count "buffer_pool.hits" s)
         (Obs.span_count "buffer_pool.misses" s))
  | None -> ());
  let interesting =
    List.filter
      (fun (k, _) -> not (String.length k >= 12 && String.sub k 0 12 = "buffer_pool."))
      s.Obs.s_counts
  in
  if interesting <> [] then
    push
      ("["
      ^ String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) interesting)
      ^ "]");
  String.concat "  " (List.rev !parts)

(* Index-nested-loop plans open one probe span per binding; past this
   many consecutive same-named siblings the tail is folded into one
   aggregate line so analyze output stays readable. *)
let sibling_fold_threshold = 8
let sibling_fold_keep = 3

(* A rendering item: a real span, or a folded run of same-named ones. *)
type render_item = Span of Obs.span | Folded of string * int * float

let fold_siblings children =
  let runs =
    List.fold_left
      (fun acc (c : Obs.span) ->
        match acc with
        | (name, run) :: rest when String.equal name c.Obs.s_name ->
          (name, c :: run) :: rest
        | _ -> (c.Obs.s_name, [ c ]) :: acc)
      [] children
    |> List.rev_map (fun (name, run) -> (name, List.rev run))
  in
  List.concat_map
    (fun (name, run) ->
      if List.length run <= sibling_fold_threshold then List.map (fun s -> Span s) run
      else begin
        let rec split k = function
          | rest when k = 0 -> ([], rest)
          | x :: rest ->
            let kept, folded = split (k - 1) rest in
            (x :: kept, folded)
          | [] -> ([], [])
        in
        let kept, folded = split sibling_fold_keep run in
        let total_ms =
          List.fold_left (fun acc s -> acc +. Obs.elapsed_ms s) 0.0 folded
        in
        List.map (fun s -> Span s) kept @ [ Folded (name, List.length folded, total_ms) ]
      end)
    runs

let rec render_span buf prefix connector (s : Obs.span) =
  let label =
    match List.assoc_opt "path" s.Obs.s_meta with
    | Some p -> Printf.sprintf "%s %s" s.Obs.s_name p
    | None -> s.Obs.s_name
  in
  Buffer.add_string buf
    (Printf.sprintf "%s%s%-40s %8.2f ms  %s\n" prefix connector label (Obs.elapsed_ms s)
       (span_suffix s));
  let child_prefix =
    match connector with
    | "" -> prefix
    | "└─ " -> prefix ^ "   "
    | _ -> prefix ^ "│  "
  in
  let render_item connector = function
    | Span c -> render_span buf child_prefix connector c
    | Folded (name, n, ms) ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s%-40s %8.2f ms\n" child_prefix connector
           (Printf.sprintf "… %d more %s" n name)
           ms)
  in
  let rec go = function
    | [] -> ()
    | [ last ] -> render_item "└─ " last
    | c :: rest ->
      render_item "├─ " c;
      go rest
  in
  go (fold_siblings s.Obs.s_children)

let trace_to_string (s : Obs.span) =
  let buf = Buffer.create 512 in
  render_span buf "" "" s;
  Buffer.contents buf

let pp_trace ppf s = Format.pp_print_string ppf (trace_to_string s)

let rec span_to_json (s : Obs.span) =
  let fields =
    [
      ("name", json_string s.Obs.s_name);
      ("elapsed_ms", json_float (Obs.elapsed_ms s));
      ( "meta",
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> json_string k ^ ":" ^ json_string v) s.Obs.s_meta)
        ^ "}" );
      ( "counts",
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> json_string k ^ ":" ^ string_of_int v) s.Obs.s_counts)
        ^ "}" );
      ("children", "[" ^ String.concat "," (List.map span_to_json s.Obs.s_children) ^ "]");
    ]
  in
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields) ^ "}"

let trace_to_json s = span_to_json s

(* ------------------------------------------------------------------ *)
(* Metrics export                                                      *)
(* ------------------------------------------------------------------ *)

let histogram_to_json (h : Obs.histogram) =
  let buckets =
    Array.to_list
      (Array.mapi
         (fun i n ->
           let le =
             if i < Array.length h.Obs.h_bounds then json_float h.Obs.h_bounds.(i)
             else "\"+Inf\""
           in
           Printf.sprintf "{\"le\":%s,\"count\":%d}" le n)
         h.Obs.h_counts)
  in
  Printf.sprintf "{\"count\":%d,\"sum\":%s,\"buckets\":[%s]}" h.Obs.h_count
    (json_float h.Obs.h_sum) (String.concat "," buckets)

let metrics_to_json () =
  let counters =
    Obs.counters ()
    |> List.map (fun (k, v) -> json_string k ^ ":" ^ string_of_int v)
    |> String.concat ","
  in
  let histograms =
    Obs.histograms ()
    |> List.map (fun h -> json_string h.Obs.h_name ^ ":" ^ histogram_to_json h)
    |> String.concat ","
  in
  Printf.sprintf "{\"counters\":{%s},\"histograms\":{%s}}" counters histograms

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]* *)
let prometheus_name s =
  "twigmatch_"
  ^ String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_') s

let metrics_to_prometheus () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, v) ->
      let name = prometheus_name k in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" name name v))
    (Obs.counters ());
  List.iter
    (fun (h : Obs.histogram) ->
      let name = prometheus_name h.Obs.h_name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
      let cumulative = ref 0 in
      Array.iteri
        (fun i n ->
          cumulative := !cumulative + n;
          let le =
            if i < Array.length h.Obs.h_bounds then Printf.sprintf "%g" h.Obs.h_bounds.(i)
            else "+Inf"
          in
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name le !cumulative))
        h.Obs.h_counts;
      Buffer.add_string buf (Printf.sprintf "%s_sum %g\n" name h.Obs.h_sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name h.Obs.h_count))
    (Obs.histograms ());
  Buffer.contents buf
