lib/index/join_index.mli: Tm_storage Tm_xml Tm_xmldb
