(** Single shredding pass over a document: every relational structure
    (Edge table, catalog, 4-ary path relation, ASR/JI relations) derives
    from this traversal. *)

type node_info = {
  id : int;
  tag : int;
  parent_id : int;  (** 0 for document roots (the virtual root) *)
  parent_tag : int;  (** -1 for document roots *)
  path : Schema_path.t;  (** rooted schema path ending at this node *)
  ids : int array;  (** rooted id list; last element = [id] *)
  value : string option;  (** leaf value directly under this node *)
}

val fold_nodes :
  Tm_xml.Xml_tree.document -> Dictionary.t -> ('a -> node_info -> 'a) -> 'a -> 'a
(** Fold over every element/attribute node in document order, interning
    tags into the dictionary as first seen. *)

val iter_nodes : Tm_xml.Xml_tree.document -> Dictionary.t -> (node_info -> unit) -> unit
