(** Repo-specific AST lint, run as a dune rule and CI gate.

    Parses every [.ml] under the given roots with compiler-libs and
    enforces, on the {e untyped} AST:

    - [poly-compare] (lib/storage, lib/index, lib/joins, lib/plan,
      lib/obs, lib/par, lib/exec, lib/wal): no bare
      polymorphic [compare], and no [=]/[<>]/[List.mem] where an operand
      is syntactically non-scalar (a constructor, tuple, polymorphic
      variant or string literal) — key/payload/option comparisons must
      spell out [String.compare]/[Int.compare]/typed helpers. Being
      untyped, the check cannot see through variables; it catches the
      patterns that caused real bugs (byte-string keys compared
      structurally) without false-flagging int/char comparisons.
    - [no-failwith] (lib/core): no [failwith] and no raising of
      [Failure] — the core API reports errors via [result] or typed
      exceptions.
    - [catch-all] (all roots): no [try ... with _ ->] — including
      wildcard binders spelled [_exn] — handlers must name the
      exceptions they mean to swallow.
    - [mli-coverage] (all roots): every [.ml] needs a sibling [.mli].

    Output: [path:line:col: [rule] message], exit 1 on any finding. *)

let findings = ref 0

let report ~file ~loc ~rule msg =
  incr findings;
  let line, col =
    let p = loc.Location.loc_start in
    (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)
  in
  Printf.printf "%s:%d:%d: [%s] %s\n" file line col rule msg

(* ------------------------------------------------------------------ *)
(* Rule predicates                                                     *)
(* ------------------------------------------------------------------ *)

(* Scope tests are substring-based so they hold whether the tool is
   handed "lib", "./lib" or an absolute path. *)
let in_dir dir file =
  let dn = String.length dir and fn = String.length file in
  let rec go i = i + dn <= fn && (String.equal (String.sub file i dn) dir || go (i + 1)) in
  go 0

let is_poly_compare_scope file =
  List.exists
    (fun dir -> in_dir dir file)
    [
      "lib/storage/";
      "lib/index/";
      "lib/joins/";
      "lib/plan/";
      "lib/obs/";
      "lib/par/";
      "lib/exec/";
      "lib/wal/";
    ]

let is_core_scope file = in_dir "lib/core/" file

let is_bare_compare = function
  | Longident.Lident "compare" -> true
  | Longident.Ldot (Longident.Lident "Stdlib", "compare") -> true
  | _ -> false

let is_poly_eq = function
  | Longident.Lident ("=" | "<>") -> true
  | Longident.Ldot (Longident.Lident "Stdlib", ("=" | "<>")) -> true
  | _ -> false

let is_list_mem = function
  | Longident.Ldot (Longident.Lident "List", "mem") -> true
  | _ -> false

let is_failwith = function
  | Longident.Lident "failwith" -> true
  | Longident.Ldot (Longident.Lident "Stdlib", "failwith") -> true
  | _ -> false

(* Syntactically non-scalar: a value whose polymorphic comparison is a
   structural walk. true/false/() are immediate; everything else built
   from a constructor, tuple, variant or string literal is not. *)
let rec is_nonscalar (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_construct ({ Asttypes.txt = Longident.Lident ("true" | "false" | "()"); _ }, _)
    -> false
  | Parsetree.Pexp_construct _ -> true
  | Parsetree.Pexp_tuple _ -> true
  | Parsetree.Pexp_variant _ -> true
  | Parsetree.Pexp_constant (Parsetree.Pconst_string _) -> true
  | Parsetree.Pexp_constraint (e', _) -> is_nonscalar e'
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Per-file AST walk                                                   *)
(* ------------------------------------------------------------------ *)

let lint_structure file structure =
  let poly_scope = is_poly_compare_scope file in
  let core_scope = is_core_scope file in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { Asttypes.txt = lid; _ } when poly_scope && is_bare_compare lid ->
      report ~file ~loc:e.Parsetree.pexp_loc ~rule:"poly-compare"
        "bare polymorphic compare; use String.compare / Int.compare / a typed comparator"
    | Parsetree.Pexp_apply
        ({ Parsetree.pexp_desc = Parsetree.Pexp_ident { Asttypes.txt = lid; _ }; _ }, args)
      when poly_scope && is_poly_eq lid
           && List.exists (fun (_, a) -> is_nonscalar a) args ->
      report ~file ~loc:e.Parsetree.pexp_loc ~rule:"poly-compare"
        "polymorphic =/<> against a structured value; use a typed equality"
    | Parsetree.Pexp_apply
        ({ Parsetree.pexp_desc = Parsetree.Pexp_ident { Asttypes.txt = lid; _ }; _ },
         (_, first) :: _)
      when poly_scope && is_list_mem lid && is_nonscalar first ->
      report ~file ~loc:e.Parsetree.pexp_loc ~rule:"poly-compare"
        "List.mem on a structured value compares polymorphically; use List.exists with a typed \
         equality"
    | Parsetree.Pexp_ident { Asttypes.txt = lid; _ } when core_scope && is_failwith lid ->
      report ~file ~loc:e.Parsetree.pexp_loc ~rule:"no-failwith"
        "failwith in lib/core; raise a typed exception or return a result"
    | Parsetree.Pexp_construct ({ Asttypes.txt = Longident.Lident "Failure"; _ }, Some _)
      when core_scope ->
      report ~file ~loc:e.Parsetree.pexp_loc ~rule:"no-failwith"
        "Failure raised in lib/core; raise a typed exception or return a result"
    | Parsetree.Pexp_try (_, cases) ->
      List.iter
        (fun (c : Parsetree.case) ->
          match (c.Parsetree.pc_lhs.Parsetree.ppat_desc, c.Parsetree.pc_guard) with
          | Parsetree.Ppat_any, None ->
            report ~file ~loc:c.Parsetree.pc_lhs.Parsetree.ppat_loc ~rule:"catch-all"
              "catch-all `try ... with _ ->`; name the exceptions this handler may swallow"
          (* A wildcard binder spelled [_exn] is the same catch-all wearing
             a name the binder-unused warning will not question. *)
          | Parsetree.Ppat_var { Asttypes.txt = name; _ }, None
            when String.length name > 0 && name.[0] = '_' ->
            report ~file ~loc:c.Parsetree.pc_lhs.Parsetree.ppat_loc ~rule:"catch-all"
              (Printf.sprintf
                 "catch-all `try ... with %s ->`; bind a used name and re-raise what you do not \
                  handle, or name the exceptions"
                 name)
          | _ -> ())
        cases
    | _ -> ());
    super.Ast_iterator.expr it e
  in
  let it = { super with Ast_iterator.expr } in
  it.Ast_iterator.structure it structure

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let rec walk dir acc =
  Array.fold_left
    (fun acc name ->
      let path = Filename.concat dir name in
      if Sys.is_directory path then walk path acc
      else if Filename.check_suffix name ".ml" then path :: acc
      else acc)
    acc (Sys.readdir dir)

(* Paths are reported relative to the repo root; when run from a dune
   sandbox the roots come in as e.g. "../../lib", which we strip back
   to "lib/..." so the scope rules and messages are stable. *)
let normalize path =
  let rec strip p =
    if String.length p >= 3 && String.sub p 0 3 = "../" then
      strip (String.sub p 3 (String.length p - 3))
    else p
  in
  strip path

let () =
  let roots = match Array.to_list Sys.argv with _ :: r :: rest -> r :: rest | _ -> [ "lib" ] in
  let files = List.concat_map (fun root -> List.sort String.compare (walk root [])) roots in
  List.iter
    (fun path ->
      let file = normalize path in
      let mli = path ^ "i" in
      if not (Sys.file_exists mli) then begin
        incr findings;
        Printf.printf "%s:1:0: [mli-coverage] module has no interface file (%si expected)\n" file
          file
      end;
      let ic = open_in_bin path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let lexbuf = Lexing.from_string content in
      Lexing.set_filename lexbuf file;
      match Parse.implementation lexbuf with
      | structure -> lint_structure file structure
      | exception _ -> ())
    files;
  if !findings > 0 then begin
    Printf.printf "lint: %d finding(s)\n" !findings;
    exit 1
  end
