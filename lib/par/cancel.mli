(** Cooperative cancellation tokens with optional deadlines.

    A token is shared between a query driver and the {!Pool} tasks it
    fans out: any party can {!cancel} it, and a token created with
    {!with_deadline_ms} (or armed later with {!set_deadline_ms}) trips
    itself once the monotonic clock passes the deadline. Work loops
    call {!check} at natural yield points (between probe chunks, per
    path) — cancellation is cooperative, so latency to stop is bounded
    by the longest stretch between checks.

    Tokens can be chained: a token created with [?parent] also trips
    when its parent does, so a server can hand one request-scoped
    token down through layers that create their own attempt-scoped
    tokens (the executor's replan machinery) without the inner layers
    being able to trip the outer request.

    Every trip is {e classified} exactly once — {!Explicit} or
    {!Deadline} — by a compare-and-set, so N domains racing
    {!set_deadline_ms}/{!check}/{!cancel} against one token agree on a
    single {!reason} and none of them loses the cancellation.

    Tokens are domain-safe ([Atomic.t] inside) and cheap to poll: an
    un-tripped {!check} is one atomic load plus, for deadline tokens,
    one clock read (plus the same again per ancestor). *)

type t

exception Cancelled
(** Raised by {!check} once the token is tripped. Pool futures carry it
    back to the caller like any other task exception. *)

(** Why the token tripped: an explicit {!cancel}, or a deadline
    expiring. Classified exactly once per token. *)
type reason = Explicit | Deadline

val never : t
(** A token that never trips — the default when no deadline is set. *)

val token : ?parent:t -> unit -> t
(** A fresh explicit-only token: never trips by time, but {!cancel}
    trips it (unlike the shared {!never}), and it also reads as
    cancelled whenever [parent] is. Used by the executor's mid-query
    replan machinery when no deadline is armed. *)

val with_deadline_ms : ?parent:t -> float -> t
(** A fresh token that trips once the given number of milliseconds has
    elapsed from now (monotonic clock). Non-positive values trip
    immediately. *)

val set_deadline_ms : t -> float -> unit
(** Arm (or replace) the deadline on an existing token: it trips once
    [ms] milliseconds have elapsed from {e now}. Non-positive values
    trip immediately. Domain-safe; no effect on {!never}. The serving
    layer uses this to create a token at accept time and arm the
    request budget at admission time. *)

val cancel : t -> unit
(** Trip the token explicitly. Idempotent; no effect on {!never}. *)

val cancelled : t -> bool
(** Has the token (or an ancestor) tripped — explicitly or by
    deadline? Checking a deadline token latches it, so later calls
    stay [true]. *)

val reason : t -> reason option
(** How the token tripped ([None] while it has not). Consults the
    ancestor chain when the token itself was not tripped directly.
    Stable: the first classification wins and never changes. *)

val check : t -> unit
(** @raise Cancelled once the token has tripped. *)

val deadline_ms : t -> float option
(** The deadline this token was armed with, if any (for reporting). *)
