(** Process-global failpoint registry for fault injection.

    A {e failpoint} is a named site in the code ("pager.read",
    "buffer_pool.evict", ...) that consults this registry on every
    execution. An injected fault arms the site with a {!trigger}
    (fire every Nth call, with probability p, or on every call after
    the first k) and an {!action} (raise {!Io_error}, hand back torn
    or bit-flipped bytes, or delay). Un-armed sites cost one atomic
    load and a short scan of the (tiny) registry.

    The registry is domain-safe: trigger state lives in [Atomic.t]
    counters, so concurrent domains hitting the same site see a single
    shared every-N/after-K schedule. Hit counts are exported both
    directly ({!hits}) and as [fault.<site>.hits] counters through
    {!Tm_obs.Obs} (visible in [twigql metrics] / [--metrics-out] when
    the sink is on).

    Failpoints can also be armed from the environment: the variable
    {!env_var} holds a [;]-separated list of specs, e.g.

    {v TWIGMATCH_FAILPOINTS='pager.read=prob:0.01;buffer_pool.evict=every:50,torn' v}

    parsed at module initialization (so every binary linking this
    library honours it) and re-parseable with {!parse} /
    {!install_env}. *)

exception Io_error of { site : string; detail : string }
(** The typed I/O failure an armed [Fail] site raises. *)

type action =
  | Fail  (** raise {!Io_error} at the site *)
  | Torn  (** byte sites: return a torn (half-zeroed) copy; other sites: {!Io_error} *)
  | Bitflip  (** byte sites: flip one bit of the copy; other sites: {!Io_error} *)
  | Delay_ms of int  (** busy-wait approximately this many milliseconds, then proceed *)

type trigger =
  | Every of int  (** fire on calls N, 2N, 3N, ... *)
  | Prob of float  (** fire each call with this probability *)
  | After of int  (** fire on every call after the first K *)

type spec = { site : string; trigger : trigger; action : action }

val inject : ?action:action -> site:string -> trigger -> unit
(** Arm [site]. Default action is [Fail]. Re-arming a site replaces its
    previous spec and resets its counters.
    @raise Invalid_argument on a non-positive [Every], negative [After]
    or a probability outside [0, 1]. *)

val clear : ?site:string -> unit -> unit
(** Disarm one site, or every site when [site] is omitted. *)

val active : unit -> spec list
(** Currently armed failpoints, in arming order. *)

val calls : string -> int
(** Times the site was consulted since arming (0 when un-armed). *)

val hits : string -> int
(** Times the site actually fired since arming (0 when un-armed). *)

val fire : string -> action option
(** The per-call decision: [Some action] when the armed trigger fires
    on this call, [None] otherwise (including un-armed sites). Counts
    the call and, on firing, the hit. *)

val apply : site:string -> bytes -> bytes
(** Hook for byte-producing sites: {!fire}, then apply the action —
    [Fail] raises {!Io_error}; [Torn] returns a copy with the second
    half zeroed; [Bitflip] returns a copy with one bit flipped;
    [Delay_ms] busy-waits and returns the input unchanged. Returns the
    input unchanged when the site does not fire. Never mutates its
    argument. *)

val guard : string -> unit
(** Hook for sites with no bytes to corrupt (alloc, eviction, write
    intents): [Fail]/[Torn]/[Bitflip] raise {!Io_error}; [Delay_ms]
    busy-waits. *)

val parse : string -> (spec list, string) result
(** Parse a failpoint list:
    [site=MODE:ARG(,ACTION)?(;site=...)*] with MODE one of [every]/
    [prob]/[after] and ACTION one of [fail] (default), [torn],
    [bitflip], [delay:MS]. *)

val env_var : string
(** ["TWIGMATCH_FAILPOINTS"]. *)

val install_env : unit -> unit
(** Replace the registry with the specs parsed from {!env_var}
    (clearing it when unset or empty). Malformed specs are reported on
    stderr and ignored. Runs automatically at module initialization. *)
