lib/index/asr.mli: Tm_storage Tm_xml Tm_xmldb
