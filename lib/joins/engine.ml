(** Twig evaluation by structural joins — the two classic alternatives
    to path indexing that the paper cites as "stitching" machinery
    ([34], [1], [3]) but could not benchmark on DB2. Both engines read
    start-sorted tag / value streams and the region index; no path
    index is involved.

    - {!run_stj}: binary structural semi-joins (Stack-Tree style), one
      per twig edge — a bottom-up candidates pass and a top-down
      selection pass.
    - {!run_pathstack}: holistic PathStack (Bruno et al.) over each
      root-to-leaf path, producing path solutions merged with
      relational joins — the "holistic path matching + merge" phase of
      TwigStack. *)

open Tm_xmldb
open Tm_query
open Tm_exec

type result = { ids : int list; stats : Stats.t }

(* Shared with the executor's pipeline (same counter handle by name):
   lets traces over either engine reconcile against Stats. *)
let c_rows_produced = Tm_obs.Obs.counter "exec.rows_produced"
let c_join_steps = Tm_obs.Obs.counter "exec.join_steps"

let axis_of = function Twig.Child -> Structural_join.Child | Twig.Descendant -> Structural_join.Descendant

(* Stream (start-sorted candidate ids) for one twig node, [] when the
   tag is unknown. Wildcard steps stream every node, filtered by value
   through the Edge tuple when predicated. *)
let stream_of (ctx : Context.t) (n : Twig.node) =
  let range_filter ids =
    match n.Twig.range with
    | None -> ids
    | Some r ->
      List.filter
        (fun id ->
          match Context.node_value ctx id with
          | Some v -> Twig.range_matches r v
          | None -> false)
        ids
  in
  if String.equal n.Twig.name "*" then begin
    let all = Context.all_stream ctx in
    match n.Twig.value with
    | None -> range_filter all
    | Some v ->
      List.filter
        (fun id ->
          match Context.node_value ctx id with Some v' -> String.equal v' v | None -> false)
        all
  end
  else
    match Dictionary.find ctx.Context.dict n.Twig.name with
    | None -> []
    | Some tag -> (
      match n.Twig.value with
      | Some v -> Context.value_stream ctx tag v
      | None -> range_filter (Context.tag_stream ctx tag))

let doc_roots_only (ctx : Context.t) ids =
  List.filter (fun id -> Region.level_of ctx.Context.region id = 1) ids

(* ------------------------------------------------------------------ *)
(* Binary structural semi-joins                                        *)
(* ------------------------------------------------------------------ *)

let run_stj (ctx : Context.t) (twig : Twig.t) =
  let stats = Stats.create () in
  let semijoin ~axis ~ancs ~descs =
    stats.Stats.join_steps <- stats.Stats.join_steps + 1;
    Tm_obs.Obs.incr c_join_steps;
    Structural_join.semijoin ctx.Context.region ~axis ~ancs ~descs
  in
  (* bottom-up: candidates satisfying each node's subtree pattern *)
  let candidates = Hashtbl.create 16 in
  let rec up (n : Twig.node) =
    List.iter (fun (_, c) -> up c) n.Twig.branches;
    stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
    let own = stream_of ctx n in
    stats.Stats.entries_scanned <- stats.Stats.entries_scanned + List.length own;
    let filtered =
      List.fold_left
        (fun acc (ax, c) ->
          let kept, _ =
            semijoin ~axis:(axis_of ax) ~ancs:acc ~descs:(Hashtbl.find candidates c.Twig.uid)
          in
          kept)
        own n.Twig.branches
    in
    Hashtbl.replace candidates n.Twig.uid filtered
  in
  Tm_obs.Obs.with_span "stj:bottom-up" (fun () -> up twig.Twig.root);
  (* top-down: keep candidates whose ancestor chain also matches *)
  let selected = Hashtbl.create 16 in
  let root_sel =
    let c = Hashtbl.find candidates twig.Twig.root.Twig.uid in
    match twig.Twig.root_axis with
    | Twig.Child -> doc_roots_only ctx c
    | Twig.Descendant -> c
  in
  Hashtbl.replace selected twig.Twig.root.Twig.uid root_sel;
  let rec down (n : Twig.node) =
    List.iter
      (fun (ax, c) ->
        let _, kept =
          semijoin ~axis:(axis_of ax)
            ~ancs:(Hashtbl.find selected n.Twig.uid)
            ~descs:(Hashtbl.find candidates c.Twig.uid)
        in
        Hashtbl.replace selected c.Twig.uid kept;
        down c)
      n.Twig.branches
  in
  Tm_obs.Obs.with_span "stj:top-down" (fun () -> down twig.Twig.root);
  let out = (Twig.output_node twig).Twig.uid in
  { ids = List.sort_uniq Int.compare (Hashtbl.find selected out); stats }

(* ------------------------------------------------------------------ *)
(* Holistic PathStack + merge                                          *)
(* ------------------------------------------------------------------ *)

(* One stack entry: the data node and how many entries were open on the
   parent stack when it was pushed (all of which contain it). *)
type ps_entry = { node : int; parent_open : int }

let run_pathstack (ctx : Context.t) (twig : Twig.t) =
  let stats = Stats.create () in
  let region = ctx.Context.region in
  let out_uid = (Twig.output_node twig).Twig.uid in
  let branch_uids = List.map (fun n -> n.Twig.uid) (Twig.branch_nodes twig) in
  let keep = out_uid :: branch_uids in
  let paths = Decompose.linear_paths twig in
  let eval_path (l : Decompose.linear) =
    let steps = Array.of_list l.Decompose.steps in
    let n = Array.length steps in
    let needed_idx =
      let all = List.init n Fun.id in
      let chosen = List.filter (fun i -> List.mem steps.(i).Decompose.uid keep) all in
      match chosen with [] -> [ n - 1 ] | _ :: _ -> chosen
    in
    (* streams as arrays with cursors *)
    let streams =
      Array.mapi
        (fun i (s : Decompose.step) ->
          stats.Stats.index_lookups <- stats.Stats.index_lookups + 1;
          let tw_node = { Twig.uid = s.Decompose.uid; name = s.Decompose.name;
                          value = (if i = n - 1 then l.Decompose.value else None);
                          range = (if i = n - 1 then l.Decompose.range else None);
                          output = false; branches = [] } in
          Array.of_list (stream_of ctx tw_node))
        steps
    in
    let cursors = Array.make n 0 in
    let stacks : ps_entry list array = Array.make n [] in
    let next_start i =
      if cursors.(i) < Array.length streams.(i) then Some streams.(i).(cursors.(i)) else None
    in
    let rows = ref [] in
    (* expand solutions when a leaf is pushed: walk stack pointers
       upward, enumerating ancestor choices and checking Child axes *)
    let rec expand i node open_count acc =
      if i < 0 then rows := acc :: !rows
      else begin
        (* candidate ancestors: the first [open_count] entries of
           stacks.(i) counted from the bottom = all but the newest
           (len - open_count) *)
        let entries = List.rev stacks.(i) in
        (* bottom-first *)
        let rec take k = function
          | e :: rest when k > 0 -> e :: take (k - 1) rest
          | _ -> []
        in
        List.iter
          (fun (e : ps_entry) ->
            let ok =
              match steps.(i + 1).Decompose.axis with
              | Twig.Descendant -> Region.is_ancestor region ~anc:e.node ~desc:node
              | Twig.Child -> Region.is_parent region ~parent:e.node ~child:node
            in
            if ok then expand (i - 1) e.node e.parent_open ((i, e.node) :: acc))
          (take open_count entries)
      end
    in
    let emit_leaf node open_count =
      expand (n - 2) node open_count [ (n - 1, node) ]
    in
    let finished = ref false in
    while not !finished do
      (* the stream with the smallest next start *)
      let qmin = ref (-1) and best = ref max_int in
      Array.iteri
        (fun i _ ->
          match next_start i with
          | Some s when s < !best ->
            best := s;
            qmin := i
          | _ -> ())
        streams;
      if !qmin < 0 || Option.is_none (next_start (n - 1)) then finished := true
      else begin
        let i = !qmin in
        let v = streams.(i).(cursors.(i)) in
        cursors.(i) <- cursors.(i) + 1;
        stats.Stats.entries_scanned <- stats.Stats.entries_scanned + 1;
        (* clean every stack against v's start *)
        Array.iteri
          (fun j st ->
            stacks.(j) <-
              List.filter (fun (e : ps_entry) -> v <= Region.end_of region e.node) st)
          stacks;
        (* root anchoring *)
        let anchored =
          if i > 0 then true
          else
            match twig.Twig.root_axis with
            | Twig.Descendant -> true
            | Twig.Child -> Region.level_of region v = 1
        in
        if anchored then begin
          let parent_open = if i = 0 then 0 else List.length stacks.(i - 1) in
          if i = 0 || parent_open > 0 then begin
            stacks.(i) <- { node = v; parent_open } :: stacks.(i);
            if i = n - 1 then begin
              emit_leaf v parent_open;
              (* leaves never nest usefully; pop immediately *)
              stacks.(i) <- List.tl stacks.(i)
            end
          end
        end
      end
    done;
    (* rows bind every step; project the needed columns *)
    let cols = Array.of_list (List.map (fun i -> steps.(i).Decompose.uid) needed_idx) in
    let to_row binding =
      Array.of_list
        (List.map
           (fun i ->
             match List.assoc_opt i binding with
             | Some id -> id
             | None -> invalid_arg "pathstack: incomplete binding")
           needed_idx)
    in
    stats.Stats.rows_produced <- stats.Stats.rows_produced + List.length !rows;
    Tm_obs.Obs.add c_rows_produced (List.length !rows);
    Relation.distinct (Relation.create cols (List.map to_row !rows))
  in
  let relations =
    List.mapi
      (fun i p -> Tm_obs.Obs.with_span (Printf.sprintf "pathstack:path:%d" (i + 1)) (fun () -> eval_path p))
      paths
  in
  let joined =
    match relations with
    | [] -> invalid_arg "run_pathstack: no paths"
    | r :: rest ->
      List.fold_left
        (fun acc r ->
          stats.Stats.join_steps <- stats.Stats.join_steps + 1;
          Tm_obs.Obs.incr c_join_steps;
          Tm_obs.Obs.with_span "join:hash" (fun () -> Relation.hash_join acc r))
        r rest
  in
  { ids = Relation.column_values joined out_uid; stats }
