lib/index/join_index.ml: Bptree Buffer_pool Codec Hashtbl List Path_relation Schema_catalog Schema_path Tm_storage Tm_xmldb
