lib/xmldb/shred.mli: Dictionary Schema_path Tm_xml
