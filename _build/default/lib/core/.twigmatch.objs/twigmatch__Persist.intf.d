lib/core/persist.mli: Database
