lib/storage/pager.ml: Array Bytes Printf
