(** Twig decomposition (paper Section 2.3).

    A twig is covered by its root-to-leaf {e linear paths}; each linear
    path is evaluated with index lookups and the results are stitched
    together by joining on the data-node ids bound at shared twig nodes
    (the branch points). This module enumerates the linear paths and
    provides the pattern matcher used to (a) post-filter index rows
    whose schema paths must satisfy a pattern containing [//], and
    (b) locate the positions of branch-point nodes inside a matched
    data path so their ids can be pulled out of the IdList — the
    "extract the ids of the branch point from the IdLists" step of
    Section 5.2.2. *)

type step = { axis : Twig.axis; name : string; uid : int }

type linear = {
  steps : step list;  (** twig root first; [steps] is never empty *)
  value : string option;  (** equality predicate at the leaf, if any *)
  range : Twig.range option;  (** inequality predicate at the leaf *)
}

let leaf_uid l = (List.nth l.steps (List.length l.steps - 1)).uid
let step_uids l = List.map (fun s -> s.uid) l.steps

(** All root-to-leaf linear paths of [t], in twig pre-order. *)
let linear_paths (t : Twig.t) : linear list =
  let rec go prefix axis (n : Twig.node) =
    let prefix = { axis; name = n.Twig.name; uid = n.Twig.uid } :: prefix in
    match n.Twig.branches with
    | [] -> [ { steps = List.rev prefix; value = n.Twig.value; range = n.Twig.range } ]
    | branches ->
      let below = List.concat_map (fun (ax, c) -> go prefix ax c) branches in
      (* A value/range predicate on an internal node adds its own linear
         path ending at that node (e.g. .../quantity[. = '2']/extra). *)
      if n.Twig.value <> None || n.Twig.range <> None then
        { steps = List.rev prefix; value = n.Twig.value; range = n.Twig.range } :: below
      else below
  in
  go [] t.Twig.root_axis t.Twig.root

(** The uid of the deepest twig node shared by [a] and [b] (their common
    prefix — linear paths of one twig always share at least the root). *)
let deepest_shared_uid a b =
  let rec go last xs ys =
    match (xs, ys) with
    | x :: xs', y :: ys' when x.uid = y.uid -> go (Some x.uid) xs' ys'
    | _ -> last
  in
  match go None a.steps b.steps with
  | Some uid -> uid
  | None -> invalid_arg "Decompose.deepest_shared_uid: paths from different twigs"

(* ------------------------------------------------------------------ *)
(* Pattern matching against schema paths                               *)
(* ------------------------------------------------------------------ *)

(** A linear pattern over tag ids: steps of (axis, tag). *)
type tag_pattern = (Twig.axis * int) array

(** Tag id standing for a wildcard ([*]) step: matches any tag. *)
let wildcard = -1

let tag_matches want got = want = wildcard || want = got

(** [match_all pattern path] finds every way [pattern] matches [path]
    with {e both ends anchored}: the first step must match [path.(0)]
    (for [Child]) or any position (for [Descendant]); each later
    [Child] step consumes the next position, a [Descendant] step any
    strictly later one; and the final step must land on the last
    element. Returns the list of position vectors (pattern index ->
    path index), deduplicated, in discovery order. *)
let match_all (pattern : tag_pattern) (path : int array) : int array list =
  let np = Array.length pattern and nl = Array.length path in
  if np = 0 || nl = 0 then []
  else begin
    let results = ref [] in
    (* [go i j positions]: try to match pattern.(i..) with path positions
       > j (exclusive lower bound). *)
    let rec go i j positions =
      if i = np then begin
        (* all steps placed; accept iff the leaf landed at the end *)
        match positions with
        | last :: _ when last = nl - 1 -> results := List.rev positions :: !results
        | _ -> ()
      end
      else
        let axis, tag = pattern.(i) in
        match axis with
        | Twig.Child ->
          let pos = j + 1 in
          if pos < nl && tag_matches tag path.(pos) then go (i + 1) pos (pos :: positions)
        | Twig.Descendant ->
          (* try every later position; prune: remaining steps need at
             least (np - i) positions *)
          for pos = j + 1 to nl - (np - i) do
            if tag_matches tag path.(pos) then go (i + 1) pos (pos :: positions)
          done
    in
    go 0 (-1) [];
    List.rev !results |> List.map Array.of_list
    |> List.sort_uniq compare
  end

(** Does [pattern] match [path] (both ends anchored)? *)
let matches pattern path = match_all pattern path <> []

(** Longest trailing run of {e concrete} (non-wildcard), [Child]-linked
    tags — the part that can be evaluated as a B+-tree prefix scan on
    the reverse schema path. A leading [Descendant] step's own tag is
    included (its tag is fixed; only its distance from the root
    varies); a wildcard cannot appear in the scan key at all. The
    returned array is in root-to-leaf order. *)
let child_suffix (pattern : tag_pattern) =
  let n = Array.length pattern in
  let rec start i =
    if i = 0 then 0
    else if snd pattern.(i) = wildcard then i + 1
    else if snd pattern.(i - 1) = wildcard then i
    else if fst pattern.(i) = Twig.Descendant then i
    else start (i - 1)
  in
  let s = if n = 0 then 0 else if snd pattern.(n - 1) = wildcard then n else start (n - 1) in
  Array.sub pattern s (n - s) |> Array.map snd

(** [true] when the pattern is fully specified from its anchor: no
    [Descendant] edges except possibly at the very first step, and no
    wildcards. *)
let is_pcsubpath (pattern : tag_pattern) =
  let n = Array.length pattern in
  let rec go i = i >= n || (fst pattern.(i) = Twig.Child && go (i + 1)) in
  (n = 0 || go 1) && Array.for_all (fun (_, t) -> t <> wildcard) pattern
