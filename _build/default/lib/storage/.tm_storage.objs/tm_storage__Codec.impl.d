lib/storage/codec.ml: Buffer Bytes Char List String
