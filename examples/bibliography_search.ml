(* Bibliography search: shallow-document queries over the DBLP-like
   dataset, with result rendering.

     dune exec examples/bibliography_search.exe -- [scale]

   Demonstrates: querying a forest of documents (each record is its
   own root, as the paper's Q1d-Q3d assume), mapping result node ids
   back to tree nodes, and rendering matched records. *)

open Twigmatch
module T = Tm_xml.Xml_tree

let () =
  let scale = if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.05 in
  Printf.printf "generating DBLP-like data (scale %.2f)...\n%!" scale;
  let doc = Tm_datasets.Dblp_gen.generate { Tm_datasets.Dblp_gen.seed = 7; scale } in
  let db = Database.create ~strategies:Database.[ RP; DP ] doc in

  (* Index of node id -> record root, for rendering hits. *)
  let record_of_id = Hashtbl.create 1024 in
  Array.iter
    (fun root ->
      let rec walk n =
        if not (T.is_value n) then begin
          Hashtbl.replace record_of_id n.T.id root;
          Array.iter walk n.T.children
        end
      in
      walk root)
    doc.T.roots;

  let render_record root =
    let field name =
      Array.fold_left
        (fun acc c ->
          match (acc, c.T.label) with
          | None, T.Elem t when t = name -> T.leaf_value c
          | acc, _ -> acc)
        None root.T.children
    in
    Printf.sprintf "[%s] %s (%s, %s)" (T.label_name root)
      (Option.value ~default:"?" (field "title"))
      (Option.value ~default:"?" (field "booktitle"))
      (Option.value ~default:"?" (field "year"))
  in

  let search label xpath =
    Printf.printf "\n-- %s\n   %s\n" label xpath;
    let twig = Tm_query.Xpath_parser.parse xpath in
    let r = Executor.run ~hint:(Tm_plan.Hint.Force Database.RP) db twig in
    Printf.printf "   %d matches (ROOTPATHS: %d index lookups)\n"
      (List.length r.Executor.ids)
      r.Executor.stats.Tm_exec.Stats.index_lookups;
    List.iteri
      (fun i id ->
        if i < 5 then
          match Hashtbl.find_opt record_of_id id with
          | Some root -> Printf.printf "   %s\n" (render_record root)
          | None -> Printf.printf "   (node %d)\n" id)
      r.Executor.ids;
    if List.length r.Executor.ids > 5 then Printf.printf "   ...\n"
  in

  search "the 1950 paper" "/inproceedings/year[. = '1950']";
  search "papers by any Gehrke" "/inproceedings[author = 'j. gehrke']";
  search "VLDB papers from 1998" "/inproceedings[booktitle = 'VLDB']/year[. = '1998']";
  search "theses anywhere" "//phdthesis/school";
  search "anything published in 1979" "//year[. = '1979']"
