(** Region (interval) encoding: ([start = pre-order id], [end],
    [level]) per node, enabling O(1) containment tests (the Zhang et
    al. identifiers of the paper's footnote 3). *)

type t

val build : Tm_xml.Xml_tree.document -> t

val end_of : t -> int -> int
(** Largest descendant id (inclusive). @raise Invalid_argument on a
    bad id; likewise below. *)

val level_of : t -> int -> int
(** Depth; document roots have level 1, the virtual root 0. *)

val is_ancestor : t -> anc:int -> desc:int -> bool
(** Strict (proper) ancestorship. *)

val is_parent : t -> parent:int -> child:int -> bool
