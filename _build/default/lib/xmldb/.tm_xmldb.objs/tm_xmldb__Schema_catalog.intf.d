lib/xmldb/schema_catalog.mli: Dictionary Schema_path Shred Tm_xml
