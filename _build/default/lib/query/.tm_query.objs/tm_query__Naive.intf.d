lib/query/naive.mli: Decompose Tm_xml Twig
