examples/bibliography_search.ml: Array Database Executor Hashtbl List Option Printf Sys Tm_datasets Tm_exec Tm_query Tm_xml Twigmatch
