(** Shared context for the structural-join engines: the region index,
    a tag index yielding start-sorted node streams, and the Edge
    table's value index for predicate leaves.

    These engines are the comparison the paper's evaluation had to skip
    ("We could not use the structural join algorithms of [34, 1, 3]
    since none of these algorithms has been implemented in commercial
    database systems", Section 5.1.2) — implemented here as
    beyond-the-paper baselines.

    A context is a snapshot of the document at {!build} time: region
    bounds and tag streams are not maintained by
    {!Twigmatch.Updates} (region encodings are famously
    update-hostile — the very motivation for the paper's plain numeric
    ids). Rebuild the context after structural updates. *)

open Tm_storage
open Tm_xmldb

type t = {
  region : Region.t;
  edge : Edge_table.t;
  dict : Dictionary.t;
  tag_index : Bptree.t;  (** designator -> u32 node id, start-sorted per tag *)
}

let build ~pool ~dict ~edge doc =
  let region = Region.build doc in
  let entries =
    Shred.fold_nodes doc dict
      (fun acc info ->
        (Dictionary.designator info.Shred.tag, Codec.u32_to_string info.Shred.id) :: acc)
      []
  in
  let tag_index = Bptree.bulk_load ~name:"tag_index" pool (List.sort Codec.compare_kv entries) in
  { region; edge; dict; tag_index }

let size_bytes t = Bptree.size_bytes t.tag_index

(** Start-sorted stream of all nodes with the given tag. *)
let tag_stream t tag =
  Bptree.lookup_all t.tag_index (Dictionary.designator tag)
  |> List.map (fun p -> fst (Codec.read_u32 p 0))
  |> List.sort Int.compare

(** Start-sorted stream of nodes with the tag and leaf value. *)
let value_stream t tag value =
  List.sort Int.compare (Edge_table.lookup_value t.edge ~tag ~value)

(** Start-sorted stream of every element/attribute node (wildcard
    steps). *)
let all_stream t =
  List.sort Int.compare
    (Bptree.fold_range t.tag_index ~lo:"" ~hi:None
       (fun acc _ p -> fst (Codec.read_u32 p 0) :: acc)
       [])

(** Leaf value of a node (for wildcard steps with value predicates). *)
let node_value t id = Edge_table.node_value t.edge id
