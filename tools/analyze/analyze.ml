(** Typedtree static analysis: five concurrency & resource-safety passes
    over the [.cmt] files dune produces for [lib/] (the [@check] alias).

    Where {!Tm_lint} (tools/lint) pattern-matches the {e untyped} AST,
    these passes read the typed tree, so they can resolve identifiers
    through module aliases, attribute acquisitions to a specific mutex
    {e field} (the label's record type names the lock: [Pager.t.lock]),
    and distinguish [Tm_storage.Lock] tickets by their [Outer]/[Inner]
    registry class.

    Passes (rule ids as reported):

    - [lock-order]: build the static lock-acquisition graph from
      [Mutex.protect] / [Lock.with_lock] regions (including one-argument
      wrapper functions such as the storage layer's [locked] helpers),
      propagate acquisitions one level through the local call graph, and
      fail on cycles, re-entrant acquisition, and violations of the
      ticket discipline (at most one Outer-class ticket held; nothing
      acquired under an Inner-class ticket).
    - [domain-safety]: toplevel mutable state ([ref], [Hashtbl],
      [Buffer], [Queue], mutable-record literals, [lazy]) in analyzed
      modules must be guarded — [Atomic], a named mutex, [Domain.DLS] —
      and the guard documented with [\[@@analyze.guarded_by "lock"\]].
    - [resource-safety]: no manual [Mutex.lock]/[unlock] or
      [Lock.acquire]/[release] (leak-on-raise); use [Mutex.protect] /
      [Lock.with_lock], or annotate the primitive itself with
      [\[@@analyze.manual_lock "why"\]]. File descriptors opened by a
      binding must be closed on the exception path ([Fun.protect] or a
      handler that closes), or the binding annotated
      [\[@@analyze.fd_ok "why"\]].
    - [typed-error]: no handler in [lib/core]/[lib/exec]/[lib/serve]
      may absorb the typed control exceptions [Timeout], [Corrupt_page]
      or [Bad_snapshot] (matched by constructor name): explicit matches
      on them must re-raise or carry [\[@analyze.boundary\]] on the
      handler body; catch-alls must re-raise (any [raise] application,
      or a call whose name contains "reraise") or carry the same
      annotation.
    - [failpoint]: raw page I/O in [lib/storage] — indexing into a
      [pages]/[crcs] backing array — must sit in a binding that also
      passes through a [Tm_fault.Fault.guard]/[apply] site, or be
      exempted with [\[@@analyze.no_failpoint "why"\]]. Site arguments
      must resolve to static strings so [TWIGMATCH_FAILPOINTS] can arm
      them.

    Output: [path:line:col: \[pass\] message] on stdout, exit 1 on any
    finding; [--json FILE] additionally writes a SARIF-shaped report. *)

open Typedtree

(* ------------------------------------------------------------------ *)
(* Findings                                                            *)
(* ------------------------------------------------------------------ *)

type finding = { pass : string; file : string; line : int; col : int; message : string }

let finding_compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.pass b.pass in
        if c <> 0 then c else String.compare a.message b.message

let findings : finding list ref = ref []

let strip_dots file =
  let rec go f =
    if String.length f >= 3 && String.equal (String.sub f 0 3) "../" then
      go (String.sub f 3 (String.length f - 3))
    else if String.length f >= 2 && String.equal (String.sub f 0 2) "./" then
      go (String.sub f 2 (String.length f - 2))
    else f
  in
  go file

let report ~pass ~(loc : Location.t) msg =
  let p = loc.Location.loc_start in
  findings :=
    {
      pass;
      file = strip_dots p.Lexing.pos_fname;
      line = p.Lexing.pos_lnum;
      col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
      message = msg;
    }
    :: !findings

(* ------------------------------------------------------------------ *)
(* Scopes                                                              *)
(* ------------------------------------------------------------------ *)

(* Substring-based so they hold for "lib/...", "./lib/..." and absolute
   paths, matching tools/lint. [--all-scopes] widens the scoped passes
   to every analyzed file (used by the fixture tests, which live under
   test/). *)
let in_dir dir file =
  let dn = String.length dir and fn = String.length file in
  let rec go i = i + dn <= fn && (String.equal (String.sub file i dn) dir || go (i + 1)) in
  go 0

let all_scopes = ref false

let typed_error_scope file =
  !all_scopes || List.exists (fun d -> in_dir d file) [ "lib/core/"; "lib/exec/"; "lib/serve/" ]

let failpoint_scope file = !all_scopes || in_dir "lib/storage/" file

(* ------------------------------------------------------------------ *)
(* Paths, keys, attributes                                             *)
(* ------------------------------------------------------------------ *)

(* "Tm_storage__Pager" -> "Pager" (strip dune's unit-name mangling). *)
let short_unit s =
  let n = String.length s in
  let rec last i found =
    if i + 1 >= n then found
    else if s.[i] = '_' && s.[i + 1] = '_' then last (i + 2) (Some (i + 2))
    else last (i + 1) found
  in
  match last 0 None with None -> s | Some i -> String.sub s i (n - i)

(* Normalize a path to its last two components with unit mangling and a
   leading Stdlib stripped: "Stdlib__Mutex.lock" -> "Mutex.lock",
   "Tm_fault.Fault.guard" -> "Fault.guard", "Stdlib.ref" -> "ref". *)
let key_of_path p =
  let comps = String.split_on_char '.' (Path.name p) |> List.map short_unit in
  let comps = match comps with "Stdlib" :: (_ :: _ as rest) -> rest | c -> c in
  let rec last2 = function ([ _ ] | [ _; _ ]) as l -> l | _ :: tl -> last2 tl | [] -> [] in
  String.concat "." (last2 comps)

(* A call/value key: local identifiers resolve within the current
   module so "locked" in pager.ml and buffer_pool.ml stay distinct. *)
let value_key ~curmod p =
  match p with Path.Pident id -> curmod ^ "." ^ Ident.name id | _ -> key_of_path p

let base_name key =
  match String.rindex_opt key '.' with
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)
  | None -> key

let type_key ty =
  match Types.get_desc ty with Types.Tconstr (p, _, _) -> Some (key_of_path p) | _ -> None

(* "Pager.t.lock": the mutex a record label denotes, independent of
   which value of the type it is read from. *)
let label_key (lbl : Types.label_description) =
  match type_key lbl.Types.lbl_res with
  | Some tk -> Some (tk ^ "." ^ lbl.Types.lbl_name)
  | None -> None

let has_attr name (attrs : Typedtree.attributes) =
  List.exists (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt name) attrs

(* ------------------------------------------------------------------ *)
(* The lock graph's nodes                                              *)
(* ------------------------------------------------------------------ *)

type cls = Outer | Inner

type node =
  | Nmutex of string  (** a plain [Mutex.t]: global name or record label key *)
  | Nticket of string * cls option  (** a [Lock.t] ticket and its registry class, if known *)

let node_name = function
  | Nmutex n -> n
  | Nticket (n, Some Outer) -> n ^ " (Outer ticket)"
  | Nticket (n, Some Inner) -> n ^ " (Inner ticket)"
  | Nticket (n, None) -> n ^ " (ticket)"

let node_id = function Nmutex n -> "m:" ^ n | Nticket (n, _) -> "t:" ^ n

(* ------------------------------------------------------------------ *)
(* Phase A: global collection                                          *)
(* ------------------------------------------------------------------ *)

type binding = {
  b_key : string;  (** "Mod.name" *)
  b_attrs : Typedtree.attributes;
  b_expr : Typedtree.expression;
  b_loc : Location.t;
  b_file : string;
}

let bindings : (string, binding) Hashtbl.t = Hashtbl.create 256
let global_mutexes : (string, unit) Hashtbl.t = Hashtbl.create 16
let ticket_globals : (string, cls) Hashtbl.t = Hashtbl.create 16
let label_cls : (string, cls) Hashtbl.t = Hashtbl.create 16
let site_strings : (string, string) Hashtbl.t = Hashtbl.create 16
let wrappers : (string, node option) Hashtbl.t = Hashtbl.create 16

(* Per-binding lock facts, filled during phase B. *)
let fn_direct : (string, node list ref) Hashtbl.t = Hashtbl.create 64
let fn_calls : (string, string list ref) Hashtbl.t = Hashtbl.create 64

let tbl_push tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := v :: !r
  | None -> Hashtbl.replace tbl key (ref [ v ])

let tbl_list tbl key = match Hashtbl.find_opt tbl key with Some r -> !r | None -> []

let head_key ~curmod (e : Typedtree.expression) =
  match e.exp_desc with Texp_ident (p, _, _) -> Some (value_key ~curmod p) | _ -> None

let pos_args args = List.filter_map (fun (_, a) -> a) args

(* [Lock.create Lock.Outer] and friends. *)
let ticket_class_of_rhs ~curmod (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (hd, args) when head_key ~curmod hd = Some "Lock.create" -> (
    match pos_args args with
    | [ { exp_desc = Texp_construct (_, cd, _); _ } ] -> (
      match cd.cstr_name with "Outer" -> Some Outer | "Inner" -> Some Inner | _ -> None)
    | _ -> None)
  | _ -> None

let collect_module ~curmod ~file (str : Typedtree.structure) =
  let add_binding ~curmod name attrs expr loc =
    let b_key = curmod ^ "." ^ name in
    Hashtbl.replace bindings b_key { b_key; b_attrs = attrs; b_expr = expr; b_loc = loc; b_file = file };
    (match expr.exp_desc with
    | Texp_apply (hd, _) when head_key ~curmod hd = Some "Mutex.create" ->
      Hashtbl.replace global_mutexes b_key ()
    | Texp_constant (Asttypes.Const_string (s, _, _)) -> Hashtbl.replace site_strings b_key s
    | _ -> ());
    match ticket_class_of_rhs ~curmod expr with
    | Some c -> Hashtbl.replace ticket_globals b_key c
    | None -> ()
  in
  (* Record literals anywhere in the module tell us the registry class
     of ticket-typed fields ([lock = Lock.create Lock.Outer]). *)
  let super = Tast_iterator.default_iterator in
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_record { fields; _ } ->
      Array.iter
        (fun ((lbl : Types.label_description), def) ->
          match def with
          | Typedtree.Overridden (_, rhs) -> (
            match (label_key lbl, ticket_class_of_rhs ~curmod rhs) with
            | Some lk, Some c -> Hashtbl.replace label_cls lk c
            | _ -> ())
          | Typedtree.Kept _ -> ())
        fields
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.structure it str;
  let rec items ~curmod (l : Typedtree.structure_item list) =
    List.iter
      (fun (si : Typedtree.structure_item) ->
        match si.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              let name =
                (* [let x : t = e] typechecks as an alias pattern over the
                   constraint, so both shapes name the binding. *)
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, _) | Tpat_alias (_, id, _) -> Ident.name id
                | _ -> "_"
              in
              add_binding ~curmod name vb.vb_attributes vb.vb_expr vb.vb_loc)
            vbs
        | Tstr_module { mb_id = Some id; mb_expr = { mod_desc = Tmod_structure s; _ }; _ } ->
          items ~curmod:(Ident.name id) s.str_items
        | _ -> ())
      l
  in
  items ~curmod str.str_items

(* A wrapper is a function whose body, after its parameters, is exactly
   [Mutex.protect m f] / [Lock.with_lock t f] with [f] one of its own
   parameters — the storage layer's [let locked t f = ...] idiom. The
   lock argument resolves statically (a global mutex or a record field,
   whose label identifies the lock without knowing the value). *)
let node_of_static ~curmod (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
    let key = value_key ~curmod p in
    if Hashtbl.mem global_mutexes key then Some (Nmutex key)
    else
      match Hashtbl.find_opt ticket_globals key with
      | Some c -> Some (Nticket (key, Some c))
      | None -> (
        match type_key e.exp_type with
        | Some "Mutex.t" -> Some (Nmutex key)
        | Some "Lock.t" -> Some (Nticket (key, None))
        | _ -> None))
  | Texp_field (_, _, lbl) -> (
    match label_key lbl with
    | None -> None
    | Some lk -> (
      match type_key lbl.Types.lbl_arg with
      | Some "Mutex.t" -> Some (Nmutex lk)
      | Some "Lock.t" -> Some (Nticket (lk, Hashtbl.find_opt label_cls lk))
      | _ -> None))
  | _ -> None

let detect_wrappers () =
  Hashtbl.iter
    (fun b_key (b : binding) ->
      let curmod = match String.index_opt b_key '.' with
        | Some i -> String.sub b_key 0 i
        | None -> b_key
      in
      let rec params acc (e : Typedtree.expression) =
        match e.exp_desc with
        | Texp_function { param; cases = [ { c_rhs; _ } ]; _ } -> params (param :: acc) c_rhs
        | _ -> (acc, e)
      in
      let ps, body = params [] b.b_expr in
      if ps <> [] then
        match body.exp_desc with
        | Texp_apply (hd, args) -> (
          match (head_key ~curmod hd, pos_args args) with
          | Some ("Mutex.protect" | "Lock.with_lock"), [ lock_arg; { exp_desc = Texp_ident (Path.Pident cb, _, _); _ } ]
            when List.exists (fun p -> Ident.same p cb) ps ->
            Hashtbl.replace wrappers b_key (node_of_static ~curmod lock_arg)
          | _ -> ())
        | _ -> ())
    bindings

(* ------------------------------------------------------------------ *)
(* Phase B: per-binding traversal                                      *)
(* ------------------------------------------------------------------ *)

type call_ev = { ce_held : node list; ce_key : string; ce_loc : Location.t }

type handler_ev = {
  he_file : string;
  he_ctors : string list;
  he_wild : bool;
  he_guarded : bool;
  he_reraises : bool;
  he_boundary : bool;
  he_loc : Location.t;
}

type edge = { e_from : node; e_to : node; e_loc : Location.t }

let edges : edge list ref = ref []
let call_evs : call_ev list ref = ref []
let handler_evs : handler_ev list ref = ref []

(* Top-level constructor names / wildcardness of an exception pattern. *)
let rec pat_ctors : type k. k Typedtree.general_pattern -> string list * bool =
 fun p ->
  match p.pat_desc with
  | Tpat_construct (_, cd, _, _) -> ([ cd.Types.cstr_name ], false)
  | Tpat_or (a, b, _) ->
    let ca, wa = pat_ctors a and cb, wb = pat_ctors b in
    (ca @ cb, wa || wb)
  | Tpat_alias (q, _, _) -> pat_ctors q
  | Tpat_value v -> pat_ctors (v :> Typedtree.value Typedtree.general_pattern)
  | Tpat_any | Tpat_var _ -> ([], true)
  | _ -> ([], false)

let raise_keys = [ "raise"; "raise_notrace"; "Printexc.raise_with_backtrace" ]
let close_keys = [ "Unix.close"; "close_in"; "close_out"; "close_in_noerr"; "close_out_noerr" ]

let fd_open_keys =
  [ "Unix.openfile"; "Unix.socket"; "Unix.accept"; "Unix.pipe"; "open_in"; "open_in_bin";
    "open_out"; "open_out_bin"; "open_in_gen"; "open_out_gen" ]

(* Stateless scan: does [e] contain an application of any key in [keys],
   or (when [by_name]) a call whose base name satisfies it? *)
let contains_call ~curmod ~keys ?by_name (e : Typedtree.expression) =
  let found = ref false in
  let super = Tast_iterator.default_iterator in
  let expr it (x : Typedtree.expression) =
    (if not !found then
       let k =
         match x.exp_desc with
         | Texp_apply (hd, _) -> head_key ~curmod hd
         | Texp_ident _ -> head_key ~curmod x
         | _ -> None
       in
       match k with
       | Some key ->
         if List.mem key keys then found := true
         else (
           match by_name with Some f when f (base_name key) -> found := true | _ -> ())
       | None -> ());
    if not !found then super.expr it x
  in
  let it = { super with expr } in
  it.expr it e;
  !found

type bctx = {
  x_curmod : string;
  x_file : string;
  x_key : string;  (** the enclosing toplevel binding *)
  x_attrs : Typedtree.attributes;
  mutable x_manual : (string * Location.t) list;
  mutable x_fd_opens : (string * Location.t) list;
  mutable x_fd_safe : bool;  (** Fun.protect seen, or a handler that closes *)
  mutable x_fault_sites : (string option * Location.t) list;
  mutable x_raw_io : Location.t list;
}

let walk_binding ctx (root : Typedtree.expression) =
  let curmod = ctx.x_curmod in
  let held : node list ref = ref [] in
  let acquire node loc =
    tbl_push fn_direct ctx.x_key node;
    List.iter (fun h -> edges := { e_from = h; e_to = node; e_loc = loc } :: !edges) !held
  in
  let super = Tast_iterator.default_iterator in
  let rec expr it (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_apply (hd, args) -> apply it e hd args
    | Texp_try (body, cases) ->
      expr it body;
      List.iter
        (fun (c : Typedtree.value Typedtree.case) ->
          note_handler c.c_lhs c.c_guard c.c_rhs;
          Option.iter (expr it) c.c_guard;
          expr it c.c_rhs)
        cases
    | Texp_match (scrut, cases, _) ->
      expr it scrut;
      List.iter
        (fun (c : Typedtree.computation Typedtree.case) ->
          (match Typedtree.split_pattern c.c_lhs with
          | _, Some exn_pat -> note_handler exn_pat c.c_guard c.c_rhs
          | _, None -> ());
          Option.iter (expr it) c.c_guard;
          expr it c.c_rhs)
        cases
    | _ -> super.expr it e
  and note_handler : type k. k Typedtree.general_pattern -> _ -> Typedtree.expression -> unit =
   fun pat guard rhs ->
    let ctors, wild = pat_ctors pat in
    handler_evs :=
      {
        he_file = ctx.x_file;
        he_ctors = ctors;
        he_wild = wild;
        he_guarded = guard <> None;
        he_reraises =
          contains_call ~curmod ~keys:raise_keys
            ~by_name:(fun n ->
              (* e.g. a [reraise_if_fatal] helper *)
              let rec has i =
                i + 7 <= String.length n && (String.equal (String.sub n i 7) "reraise" || has (i + 1))
              in
              has 0)
            rhs;
        he_boundary = has_attr "analyze.boundary" rhs.exp_attributes || has_attr "analyze.boundary" ctx.x_attrs;
        he_loc = pat.pat_loc;
      }
      :: !handler_evs
  and region it node_opt loc (cb : Typedtree.expression) =
    (match node_opt with Some n -> acquire n loc | None -> ());
    let saved = !held in
    (match node_opt with Some n -> held := n :: saved | None -> ());
    (match cb.exp_desc with
    | Texp_ident _ ->
      (* callback passed by name: the call happens under the lock *)
      (match head_key ~curmod cb with
      | Some key -> call_evs := { ce_held = !held; ce_key = key; ce_loc = loc } :: !call_evs
      | None -> ())
    | _ -> expr it cb);
    held := saved
  and apply it e hd args =
    let hk = head_key ~curmod hd in
    let pa = pos_args args in
    let record_call key =
      tbl_push fn_calls ctx.x_key key;
      if !held <> [] then call_evs := { ce_held = !held; ce_key = key; ce_loc = e.exp_loc } :: !call_evs
    in
    let walk_args () = List.iter (fun a -> expr it a) pa in
    match (hk, pa) with
    | Some ("Mutex.protect" | "Lock.with_lock"), [ lock_arg; cb ] ->
      expr it lock_arg;
      region it (node_of_static ~curmod lock_arg) e.exp_loc cb
    | Some "Mutex.lock", [ lock_arg ] | Some "Lock.acquire", [ lock_arg ] ->
      ctx.x_manual <- (Option.get hk, e.exp_loc) :: ctx.x_manual;
      (match node_of_static ~curmod lock_arg with
      | Some n -> acquire n e.exp_loc
      | None -> ());
      walk_args ()
    | Some "Mutex.unlock", _ | Some "Lock.release", _ ->
      ctx.x_manual <- (Option.get hk, e.exp_loc) :: ctx.x_manual;
      walk_args ()
    | Some (("Fault.guard" | "Fault.apply") as fk), _ ->
      let site_arg =
        let labelled =
          List.find_map
            (fun (l, a) -> match l with Asttypes.Labelled "site" -> a | _ -> None)
            args
        in
        match labelled with Some _ as s -> s | None -> List.nth_opt pa 0
      in
      let site =
        match site_arg with
        | Some { exp_desc = Texp_constant (Asttypes.Const_string (s, _, _)); _ } -> Some s
        | Some { exp_desc = Texp_ident (p, _, _); _ } ->
          Hashtbl.find_opt site_strings (value_key ~curmod p)
        | _ -> None
      in
      ctx.x_fault_sites <- (site, e.exp_loc) :: ctx.x_fault_sites;
      record_call fk;
      walk_args ()
    | Some "Fun.protect", _ ->
      ctx.x_fd_safe <- true;
      walk_args ()
    | Some ("Array.get" | "Array.set" | "Array.unsafe_get" | "Array.unsafe_set"), first :: _
      when (match first.exp_desc with
           | Texp_field (_, _, lbl) ->
             String.equal lbl.Types.lbl_name "pages" || String.equal lbl.Types.lbl_name "crcs"
           | _ -> false) ->
      ctx.x_raw_io <- e.exp_loc :: ctx.x_raw_io;
      walk_args ()
    | Some key, _ when Hashtbl.mem wrappers key && pa <> [] ->
      let cb = List.nth pa (List.length pa - 1) in
      List.iteri (fun i a -> if i < List.length pa - 1 then expr it a) pa;
      region it (Hashtbl.find wrappers key) e.exp_loc cb
    | Some key, _ when List.mem key fd_open_keys ->
      ctx.x_fd_opens <- (key, e.exp_loc) :: ctx.x_fd_opens;
      record_call key;
      walk_args ()
    | Some key, _ ->
      record_call key;
      walk_args ()
    | None, _ ->
      expr it hd;
      walk_args ()
  in
  (* Handlers that close an fd make a manual open/close pair safe. *)
  let fd_handler_scan () =
    let super = Tast_iterator.default_iterator in
    let expr it (x : Typedtree.expression) =
      (match x.exp_desc with
      | Texp_try (_, cases) ->
        if
          List.exists
            (fun (c : Typedtree.value Typedtree.case) ->
              contains_call ~curmod ~keys:close_keys c.c_rhs)
            cases
        then ctx.x_fd_safe <- true
      | _ -> ());
      super.expr it x
    in
    let it = { super with expr } in
    it.expr it root
  in
  fd_handler_scan ();
  let it = { super with expr = (fun it e -> expr it e) } in
  it.expr it root

(* ------------------------------------------------------------------ *)
(* Phase C: the passes                                                 *)
(* ------------------------------------------------------------------ *)

(* One-level call propagation: a call made while holding locks acquires
   everything the callee (and the callee's direct callees) acquire
   directly. Deeper nesting must hop through another analyzed call site,
   which itself gets the same treatment. *)
let expand_call_edges () =
  let eff key =
    let direct = tbl_list fn_direct key in
    let via_callees =
      List.concat_map (fun c -> tbl_list fn_direct c) (tbl_list fn_calls key)
    in
    direct @ via_callees
  in
  List.iter
    (fun ce ->
      List.iter
        (fun n ->
          List.iter (fun h -> edges := { e_from = h; e_to = n; e_loc = ce.ce_loc } :: !edges) ce.ce_held)
        (eff ce.ce_key))
    !call_evs

let pass_lock_order () =
  expand_call_edges ();
  (* Unique adjacency with one witness location per edge. *)
  let adj : (string, (node * node * Location.t) list ref) Hashtbl.t = Hashtbl.create 32 in
  let seen_pair : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let nodes : (string, node) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun e ->
      let pk = node_id e.e_from ^ "->" ^ node_id e.e_to in
      if not (Hashtbl.mem seen_pair pk) then begin
        Hashtbl.replace seen_pair pk ();
        Hashtbl.replace nodes (node_id e.e_from) e.e_from;
        Hashtbl.replace nodes (node_id e.e_to) e.e_to;
        tbl_push adj (node_id e.e_from) (e.e_from, e.e_to, e.e_loc)
      end)
    !edges;
  (* Class discipline: nothing under Inner; at most one Outer. *)
  List.iter
    (fun e ->
      let pk = "rep:" ^ node_id e.e_from ^ "->" ^ node_id e.e_to in
      if not (Hashtbl.mem seen_pair pk) then begin
        Hashtbl.replace seen_pair pk ();
        (match e.e_from with
        | Nticket (_, Some Inner) ->
          report ~pass:"lock-order" ~loc:e.e_loc
            (Printf.sprintf
               "%s acquired while holding %s; the registry discipline allows no acquisition \
                under an Inner-class ticket"
               (node_name e.e_to) (node_name e.e_from))
        | Nticket (_, Some Outer) -> (
          match e.e_to with
          | Nticket (_, Some Outer) ->
            report ~pass:"lock-order" ~loc:e.e_loc
              (Printf.sprintf
                 "%s acquired while holding %s; the registry discipline allows at most one \
                  Outer-class ticket at a time"
                 (node_name e.e_to) (node_name e.e_from))
          | _ -> ())
        | Nmutex _ | Nticket (_, None) -> ());
        if String.equal (node_id e.e_from) (node_id e.e_to) then
          report ~pass:"lock-order" ~loc:e.e_loc
            (Printf.sprintf "re-entrant acquisition of %s (self-deadlock)" (node_name e.e_from))
      end)
    !edges;
  (* Cycle detection (DFS, white/grey/black). *)
  let color : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let reported : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let rec dfs path id =
    Hashtbl.replace color id 1;
    List.iter
      (fun (_, to_node, loc) ->
        let tid = node_id to_node in
        if String.equal tid id then () (* self edges reported above *)
        else
          match Hashtbl.find_opt color tid with
          | Some 1 ->
            (* back edge: the cycle is the path suffix from tid *)
            let rec suffix = function
              | [] -> []
              | x :: _ as l when String.equal x tid -> l
              | _ :: tl -> suffix tl
            in
            let cyc = suffix (List.rev path) @ [ tid ] in
            let ck = String.concat "," (List.sort String.compare cyc) in
            if not (Hashtbl.mem reported ck) then begin
              Hashtbl.replace reported ck ();
              let names =
                List.map
                  (fun i -> match Hashtbl.find_opt nodes i with Some n -> node_name n | None -> i)
                  cyc
              in
              report ~pass:"lock-order" ~loc
                ("lock-order cycle: " ^ String.concat " -> " names)
            end
          | Some _ -> ()
          | None -> dfs (tid :: path) tid)
      (tbl_list adj id);
    Hashtbl.replace color id 2
  in
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) nodes [] |> List.sort String.compare in
  List.iter (fun id -> if not (Hashtbl.mem color id) then dfs [ id ] id) ids

let safe_heads =
  [ "Atomic.make"; "Mutex.create"; "Condition.create"; "DLS.new_key"; "Lock.create";
    "Domain.spawn"; "Sys.getenv_opt" ]

let mutable_kind ~curmod (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (hd, _) -> (
    match head_key ~curmod hd with
    | Some k when List.mem k safe_heads -> None
    | Some "ref" -> Some "ref cell"
    | Some "Hashtbl.create" -> Some "Hashtbl.t"
    | Some "Buffer.create" -> Some "Buffer.t"
    | Some "Queue.create" -> Some "Queue.t"
    | Some "Stack.create" -> Some "Stack.t"
    | Some ("Array.make" | "Array.create_float") -> Some "mutable array"
    | Some ("Bytes.create" | "Bytes.make") -> Some "bytes"
    | _ -> None)
  | Texp_record { fields; _ }
    when Array.exists
           (fun ((lbl : Types.label_description), _) ->
             match lbl.Types.lbl_mut with
             | Asttypes.Mutable -> true
             | Asttypes.Immutable -> false)
           fields -> Some "record with mutable fields"
  | Texp_lazy _ -> Some "lazy block (unsynchronized forcing)"
  | _ -> None

let pass_domain_safety () =
  Hashtbl.iter
    (fun _ (b : binding) ->
      let curmod =
        match String.index_opt b.b_key '.' with
        | Some i -> String.sub b.b_key 0 i
        | None -> b.b_key
      in
      match mutable_kind ~curmod b.b_expr with
      | Some kind when not (has_attr "analyze.guarded_by" b.b_attrs) ->
        report ~pass:"domain-safety" ~loc:b.b_loc
          (Printf.sprintf
             "toplevel mutable state `%s` (%s) is shared across domains; guard it with Atomic \
              / a named mutex / Domain.DLS and document the guard with [@@analyze.guarded_by \
              \"lock\"]"
             (base_name b.b_key) kind)
      | _ -> ())
    bindings

let binding_contexts : bctx list ref = ref []

let pass_resource_safety () =
  List.iter
    (fun ctx ->
      let attrs =
        match Hashtbl.find_opt bindings ctx.x_key with Some b -> b.b_attrs | None -> []
      in
      if not (has_attr "analyze.manual_lock" attrs) then
        List.iter
          (fun (kind, loc) ->
            report ~pass:"resource-safety" ~loc
              (Printf.sprintf
                 "manual %s leaks the lock if the critical section raises; use Mutex.protect / \
                  Lock.with_lock (or annotate the primitive [@@analyze.manual_lock \"why\"])"
                 kind))
          ctx.x_manual;
      if (not ctx.x_fd_safe) && not (has_attr "analyze.fd_ok" attrs) then
        List.iter
          (fun (kind, loc) ->
            report ~pass:"resource-safety" ~loc
              (Printf.sprintf
                 "descriptor from %s is not closed on the exception path; wrap the use in \
                  Fun.protect or close it in an exception handler"
                 kind))
          ctx.x_fd_opens)
    !binding_contexts

let typed_ctors = [ "Timeout"; "Corrupt_page"; "Bad_snapshot" ]

let pass_typed_error () =
  List.iter
    (fun h ->
      if typed_error_scope h.he_file && not h.he_boundary then begin
        let absorbed = List.filter (fun c -> List.mem c typed_ctors) h.he_ctors in
        if absorbed <> [] && (not h.he_guarded) && not h.he_reraises then
          report ~pass:"typed-error" ~loc:h.he_loc
            (Printf.sprintf
               "handler absorbs typed control exception %s; the degradation/deadline contract \
                requires it to escape — re-raise, or mark a sanctioned boundary with \
                [@analyze.boundary] on the handler body"
               (String.concat ", " absorbed))
        else if h.he_wild && (not h.he_guarded) && not h.he_reraises then
          report ~pass:"typed-error" ~loc:h.he_loc
            "catch-all handler can absorb Timeout/Corrupt_page/Bad_snapshot; re-raise what you \
             do not handle (a reraise_* helper counts) or mark the boundary with \
             [@analyze.boundary]"
      end)
    !handler_evs

let pass_failpoint () =
  List.iter
    (fun ctx ->
      if failpoint_scope ctx.x_file then begin
        let attrs =
          match Hashtbl.find_opt bindings ctx.x_key with Some b -> b.b_attrs | None -> []
        in
        List.iter
          (fun (site, loc) ->
            if site = None then
              report ~pass:"failpoint" ~loc
                "failpoint site does not resolve to a static string; TWIGMATCH_FAILPOINTS \
                 cannot arm it")
          ctx.x_fault_sites;
        if ctx.x_fault_sites = [] && not (has_attr "analyze.no_failpoint" attrs) then
          List.iter
            (fun loc ->
              report ~pass:"failpoint" ~loc
                (Printf.sprintf
                   "raw page I/O in `%s` is outside any registered failpoint; route it \
                    through a Tm_fault.Fault.guard/apply site or exempt the binding with \
                    [@@analyze.no_failpoint \"why\"]"
                   (base_name ctx.x_key)))
            ctx.x_raw_io
      end)
    !binding_contexts

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let rec find_cmts dir acc =
  Array.fold_left
    (fun acc name ->
      let path = Filename.concat dir name in
      if Sys.is_directory path then find_cmts path acc
      else if Filename.check_suffix name ".cmt" then path :: acc
      else acc)
    acc (Sys.readdir dir)

let load_cmt path =
  match (Cmt_format.read_cmt path).cmt_annots with
  | Cmt_format.Implementation str ->
    let modname = short_unit (Filename.remove_extension (Filename.basename path)) in
    let file =
      match str.str_items with
      | si :: _ -> strip_dots si.str_loc.loc_start.pos_fname
      | [] -> path
    in
    Some (modname, file, str)
  | _ -> None
  | exception _ ->
    prerr_endline ("analyze: warning: cannot read " ^ path);
    None

let run ?(scope_all = false) roots =
  all_scopes := scope_all;
  findings := [];
  edges := [];
  call_evs := [];
  handler_evs := [];
  binding_contexts := [];
  Hashtbl.reset bindings;
  Hashtbl.reset global_mutexes;
  Hashtbl.reset ticket_globals;
  Hashtbl.reset label_cls;
  Hashtbl.reset site_strings;
  Hashtbl.reset wrappers;
  Hashtbl.reset fn_direct;
  Hashtbl.reset fn_calls;
  let cmts = List.concat_map (fun r -> find_cmts r []) roots |> List.sort String.compare in
  let modules = List.filter_map load_cmt cmts in
  (* Phase A: two sweeps, so wrappers can resolve cross-module lock
     classes collected in the first. *)
  List.iter (fun (modname, file, str) -> collect_module ~curmod:modname ~file str) modules;
  detect_wrappers ();
  (* Phase B: walk every toplevel binding. *)
  Hashtbl.iter
    (fun _ (b : binding) ->
      let curmod =
        match String.index_opt b.b_key '.' with
        | Some i -> String.sub b.b_key 0 i
        | None -> b.b_key
      in
      let ctx =
        {
          x_curmod = curmod;
          x_file = b.b_file;
          x_key = b.b_key;
          x_attrs = b.b_attrs;
          x_manual = [];
          x_fd_opens = [];
          x_fd_safe = false;
          x_fault_sites = [];
          x_raw_io = [];
        }
      in
      walk_binding ctx b.b_expr;
      binding_contexts := ctx :: !binding_contexts)
    bindings;
  (* Phase C *)
  pass_lock_order ();
  pass_domain_safety ();
  pass_resource_safety ();
  pass_typed_error ();
  pass_failpoint ();
  (List.sort_uniq finding_compare !findings, List.length modules)

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pass_ids = [ "lock-order"; "domain-safety"; "resource-safety"; "typed-error"; "failpoint" ]

let write_sarif path fs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let result f =
        Printf.sprintf
          "{\"ruleId\":\"%s\",\"level\":\"error\",\"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
          f.pass (json_escape f.message) (json_escape f.file) f.line (f.col + 1)
      in
      let rules =
        List.map (fun id -> Printf.sprintf "{\"id\":\"%s\"}" id) pass_ids |> String.concat ","
      in
      Printf.fprintf oc
        "{\"version\":\"2.1.0\",\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"tm-analyze\",\"rules\":[%s]}},\"results\":[%s]}]}\n"
        rules
        (String.concat "," (List.map result fs)))

let main argv =
  let rec parse roots json scope_all = function
    | [] -> Ok (List.rev roots, json, scope_all)
    | "--json" :: file :: rest -> parse roots (Some file) scope_all rest
    | "--json" :: [] -> Error "--json needs a file argument"
    | "--all-scopes" :: rest -> parse roots json true rest
    | r :: rest -> parse (r :: roots) json scope_all rest
  in
  match parse [] None false (List.tl argv) with
  | Error msg ->
    prerr_endline ("analyze: " ^ msg);
    2
  | Ok (roots, json, scope_all) ->
    let roots = if roots = [] then [ "lib" ] else roots in
    let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
    if missing <> [] then begin
      prerr_endline ("analyze: no such root: " ^ String.concat ", " missing);
      2
    end
    else begin
      let fs, nmodules = run ~scope_all roots in
      List.iter
        (fun f -> Printf.printf "%s:%d:%d: [%s] %s\n" f.file f.line f.col f.pass f.message)
        fs;
      (match json with Some path -> write_sarif path fs | None -> ());
      if fs = [] then begin
        Printf.printf "analyze: clean (%d passes over %d modules)\n" (List.length pass_ids)
          nmodules;
        0
      end
      else begin
        Printf.printf "analyze: %d finding(s) in %d modules\n" (List.length fs) nmodules;
        1
      end
    end
