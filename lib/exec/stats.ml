(** Per-query execution statistics.

    The paper reports wall-clock time on DB2; our substrate additionally
    exposes the cost drivers directly, which makes the {e reasons} for
    each figure's shape visible: a strategy that does one index lookup
    per branch has [index_lookups] ~ branch count, while an Edge-style
    plan's [join_steps] and [entries_scanned] grow with path length and
    branch selectivity. *)

type t = {
  mutable index_lookups : int;  (** B+-tree probes (point, range or prefix scans started) *)
  mutable entries_scanned : int;  (** index entries touched by scans *)
  mutable rows_produced : int;  (** rows materialized into binding relations *)
  mutable join_steps : int;  (** joins executed (of any kind) *)
  mutable inlj_probes : int;  (** index-nested-loop probe count *)
  mutable structures_accessed : int;  (** distinct physical structures touched (ASR/JI) *)
  mutable replans : int;  (** mid-query plan abandonments (adaptive replanning) *)
}

let create () =
  {
    index_lookups = 0;
    entries_scanned = 0;
    rows_produced = 0;
    join_steps = 0;
    inlj_probes = 0;
    structures_accessed = 0;
    replans = 0;
  }

let add a b =
  {
    index_lookups = a.index_lookups + b.index_lookups;
    entries_scanned = a.entries_scanned + b.entries_scanned;
    rows_produced = a.rows_produced + b.rows_produced;
    join_steps = a.join_steps + b.join_steps;
    inlj_probes = a.inlj_probes + b.inlj_probes;
    structures_accessed = a.structures_accessed + b.structures_accessed;
    replans = a.replans + b.replans;
  }

(* Accumulate a per-task stats record into the query-level one; used
   when parallel path evaluation gives each task its own [t] and the
   coordinator folds them back in. *)
let merge_into ~into b =
  into.index_lookups <- into.index_lookups + b.index_lookups;
  into.entries_scanned <- into.entries_scanned + b.entries_scanned;
  into.rows_produced <- into.rows_produced + b.rows_produced;
  into.join_steps <- into.join_steps + b.join_steps;
  into.inlj_probes <- into.inlj_probes + b.inlj_probes;
  into.structures_accessed <- into.structures_accessed + b.structures_accessed;
  into.replans <- into.replans + b.replans

let pp ppf s =
  Fmt.pf ppf "lookups=%d scanned=%d rows=%d joins=%d probes=%d structures=%d%s" s.index_lookups
    s.entries_scanned s.rows_produced s.join_steps s.inlj_probes s.structures_accessed
    (if s.replans > 0 then Printf.sprintf " replans=%d" s.replans else "")
