(** Fixed domain pool for fanning independent read-only work across
    OCaml 5 domains: [jobs - 1] worker domains plus the submitting
    domain drain one shared task queue (the submitter helps while it
    waits, so [jobs] tasks run at once and the caller never idles).

    [jobs = 1] spawns no domains and runs everything inline, so
    sequential call sites pay nothing. Pools are reusable and should be
    long-lived relative to the work (a domain spawn costs
    milliseconds).

    The pool schedules; it does not synchronize the work. Closures
    handed to it must only touch concurrency-safe state (the striped
    {!Tm_storage.Buffer_pool}, locked {!Tm_storage.Bptree} decode
    caches, read-only data). *)

type t

type wrap = { wrap : 'a. (unit -> 'a) -> 'a }
(** A wrapper re-installing some captured ambient state around a task
    body on the executing domain. *)

val register_propagator : (unit -> wrap) -> unit
(** Register an ambient-context propagator: [capture] runs at submit
    time on the submitting domain; the {!wrap} it returns is applied
    around the task body on whichever domain executes it. Used by
    layers above to carry domain-local state (e.g. snapshot-epoch pins)
    into the pool without this library depending on them. Global,
    append-only, and meant to be called from module initializers. *)

val create : jobs:int -> t
(** Spawn a pool of [jobs] total execution slots ([jobs - 1] domains).
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int

val shutdown : t -> unit
(** Drain the queue, stop and join every worker domain. The pool must
    not be used afterwards. Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, then {!shutdown} (also on exception). *)

type 'a future

val spawn : t -> (unit -> 'a) -> 'a future
(** Enqueue a task. With [jobs = 1] the task runs inline before
    [spawn] returns. *)

val await : t -> 'a future -> 'a
(** Block until the future is fulfilled, helping drain the pool's queue
    while waiting. Re-raises the task's exception (with its original
    backtrace) if it failed. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map]: spawn one task per element, await in order.
    Result order matches input order. The first failed task's exception
    is re-raised after all tasks were submitted. *)

val chunk : pieces:int -> 'a list -> 'a list list
(** Split into at most [pieces] contiguous non-empty slices whose sizes
    differ by at most one. *)

val map_chunked : t -> ?chunks_per_job:int -> ('a list -> 'b) -> 'a list -> 'b list
(** Fan a long list of small work items out as [jobs *
    chunks_per_job] contiguous chunks (default 2 chunks per job, to
    smooth skew); returns one result per chunk, in chunk order. With
    [jobs = 1], a single chunk processed inline. *)

val env_jobs : unit -> int option
(** [TWIGMATCH_JOBS] as a positive int, if set and well-formed. *)

val default_jobs : unit -> int
(** {!env_jobs}, defaulting to 1. *)
