(** Twig evaluation by structural joins (beyond-paper baselines):
    binary Stack-Tree semi-joins and holistic PathStack + merge. *)

type result = { ids : int list; stats : Tm_exec.Stats.t }

val run_stj : Context.t -> Tm_query.Twig.t -> result
(** One structural semi-join per twig edge: bottom-up candidate
    filtering, then top-down selection. *)

val run_pathstack : Context.t -> Tm_query.Twig.t -> result
(** Holistic PathStack over each root-to-leaf path (path solutions via
    chained stacks), merged with relational joins. *)
