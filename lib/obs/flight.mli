(** Always-on flight recorder: per-domain, lock-free rings of typed,
    nanosecond-stamped events, snapshotted seqlock-style into versioned
    CRC-framed post-mortem dumps.

    Disabled by default; every {!emit} costs exactly one atomic load
    when off (the {!Obs} contract). When on, recording is one slot
    store plus one atomic counter bump on the emitting domain's own
    ring — no locks, no contention, safe on any hot path that can
    afford a clock read. *)

(** {1 Event vocabulary} *)

type kind =
  | Span_begin  (** trace-root span opened; [detail] = span name *)
  | Span_end  (** trace-root span closed; [detail] = span name, [a] = elapsed ns *)
  | Query_begin  (** [a] = jobs *)
  | Query_end  (** [a] = rows, [b] = replans *)
  | Replan  (** [a] = replan ordinal, [detail] = planner note *)
  | Fault_hit  (** [detail] = fault site *)
  | Wal_append  (** [a] = frame kind byte, [b] = frame bytes *)
  | Wal_fsync
  | Wal_commit  (** [a] = transaction id *)
  | Wal_truncate  (** [a] = surviving bytes *)
  | Txn_begin  (** [a] = pager transaction epoch *)
  | Txn_commit  (** [a] = published epoch, [b] = dirty pages *)
  | Txn_abort  (** [a] = abandoned epoch, [b] = pages restored *)
  | Epoch_publish  (** [a] = epoch now visible to new pins *)
  | Epoch_pin  (** [a] = pinned epoch *)
  | Epoch_unpin  (** [a] = released epoch *)
  | Epoch_prune  (** [a] = horizon epoch, [b] = versions reclaimed *)
  | Pool_evict  (** [a] = evicted page id *)
  | Pool_retry  (** [a] = attempt number, [detail] = why *)
  | Checkpoint  (** [a] = last transaction folded into the heap *)
  | Poisoned  (** [detail] = the poisoning error *)
  | Task_begin  (** pool task started on a worker domain *)
  | Task_end  (** [a] = elapsed ns *)
  | Sem_acquire  (** [a] = permits in use after the acquire *)
  | Sem_park  (** [a] = waiters at park time *)
  | Sem_timeout  (** [a] = expired budget, ms *)
  | Cancel_deadline  (** [a] = expired budget, ms *)
  | Cancel_explicit  (** [detail] = reason *)
  | Breaker_open  (** [a] = consecutive failures, [detail] = failure class *)
  | Breaker_half_open
  | Breaker_close
  | Breaker_reject
  | Req_begin  (** [a] = request id, [b] = permits in use *)
  | Req_end  (** [a] = HTTP status *)
  | Shed  (** [a] = 0 queue-limit, 1 p99, 2 deadline; [detail] = note *)
  | Dump  (** [detail] = dump reason *)
  | Plan_build  (** [a] = estimated rows, [b] = override count, [detail] = reason *)
  | Unknown  (** decoded from a newer writer; never emitted *)

val kind_name : kind -> string
(** Stable dotted name, e.g. ["wal.append"]. *)

val kind_code : kind -> int
(** The on-disk code: append-only, never renumbered. *)

val kind_of_code : int -> kind
(** Inverse of {!kind_code}; unassigned codes decode to {!Unknown}. *)

type event = {
  e_domain : int;  (** recording domain's id *)
  e_seq : int;  (** per-domain sequence number (dense, ascending) *)
  e_ts_ns : int;  (** monotonic-clock nanoseconds (comparable across domains) *)
  e_trace : int;  (** ambient trace id; 0 = none *)
  e_kind : kind;
  e_a : int;
  e_b : int;
  e_detail : string;
}

(** {1 Recorder control} *)

val enabled : unit -> bool

val enable : ?capacity:int -> unit -> unit
(** Turn the recorder on. [capacity] (default 1024, min 8) sizes rings
    created {e after} the call; existing domain rings keep theirs. *)

val disable : unit -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run with the recorder forced on/off, restoring the previous state. *)

val clear : unit -> unit
(** Drop every registered ring (testing). Only the calling domain's
    ring slot is reset; other live domains re-register on next emit. *)

(** {1 Recording} *)

val emit : kind -> int -> int -> string -> unit
(** [emit kind a b detail] records one event on this domain's ring,
    tagged with the ambient {!Context} trace id. When the recorder is
    disabled this is exactly one atomic load — callers building an
    expensive [detail] should guard on {!enabled}. *)

val emit_traced : int -> kind -> int -> int -> string -> unit
(** Like {!emit} with an explicit trace id (0 = none) — for sites that
    know the request id before the ambient context is installed. *)

(** {1 Snapshots} *)

val snapshot : unit -> event list
(** All domains merged onto one timeline (sorted by timestamp, stable
    within a domain). Safe to call while every domain keeps emitting. *)

val by_domain : unit -> (int * event list) list
(** Per-domain event windows, oldest first, domains ascending. *)

val total_events : unit -> int
(** Events ever recorded across all registered rings (including ones
    since overwritten). *)

(** {1 Post-mortem dumps}

    A dump is a sequence of CRC-framed records (the WAL's framing
    discipline): a header frame, one frame per domain ring, a footer
    with the total count. A dump truncated by the dying process parses
    up to the damage. *)

type dump_file = {
  d_version : int;
  d_pid : int;
  d_reason : string;
  d_time : float;  (** wall clock at dump, Unix epoch seconds *)
  d_domains : (int * event list) list;
  d_total : int;  (** footer count; -1 when the footer never made it *)
  d_damaged : string option;  (** [Some why] when the scan stopped at damage *)
}

val dump_to : path:string -> reason:string -> unit
(** Snapshot every ring into a post-mortem file (temp + rename, so an
    interrupted dump never clobbers a previous complete one). *)

val dump : reason:string -> string option
(** The automatic trigger: when the recorder is enabled and a dump path
    is configured, record a {!Dump} event, write the post-mortem there
    and return the path. Never raises — a failing dump must not mask
    the incident that triggered it. *)

val set_dump_path : string option -> unit
(** Configure where automatic {!dump}s land. *)

val dump_path : unit -> string option

type last_dump = {
  ld_path : string;
  ld_reason : string;
  ld_time : float;  (** wall clock, Unix epoch seconds *)
  ld_events : int;
  ld_domains : int;
}

val last_dump : unit -> last_dump option
(** Metadata of the most recent dump written by this process. *)

val parse_dump : string -> dump_file
(** Parse dump-file contents. Raises [Failure] only when no valid
    header frame exists; later damage is reported via [d_damaged]. *)

val load_dump : string -> dump_file
(** {!parse_dump} over a file's contents. *)

(** {1 Rendering} *)

val event_to_string : ?t0:int -> event -> string
(** One line per event; [t0] rebases timestamps (microseconds shown). *)

val merge_events : (int * event list) list -> event list
(** Per-domain windows merged onto one timeline, per-domain order
    preserved. *)

val render_dump : dump_file -> string
(** Human-readable merged timeline of a parsed dump. *)

(** {1 Environment} *)

val install_env : unit -> unit
(** Apply [TWIGMATCH_FLIGHT] (enable, value = capacity) and
    [TWIGMATCH_FLIGHT_DUMP] (post-mortem path, implies enable). Runs
    automatically at link time. *)
