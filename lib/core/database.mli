(** A twig-indexed XML database: one document, one shared storage
    substrate, and the seven indexing strategies of the paper's
    evaluation (Section 5.1.2) built side by side. *)

open Tm_storage
open Tm_xmldb
open Tm_index

type strategy = Tm_plan.Strategy.t =
  | RP  (** ROOTPATHS: merge/hash-join plans *)
  | DP  (** DATAPATHS: index-nested-loop-join plans *)
  | Edge  (** Edge table with value / forward / backward link indices *)
  | DG_edge  (** simulated DataGuide + Edge *)
  | IF_edge  (** simulated Index Fabric + Edge *)
  | Asr  (** Access Support Relations *)
  | Ji  (** Join Indices *)
(** Transparent re-export of {!Tm_plan.Strategy.t}: the planner owns
    the enum, and [Database.RP] and [Tm_plan.Strategy.RP] are the same
    constructor. *)

val all_strategies : strategy list
val strategy_name : strategy -> string

val strategy_of_string : string -> (strategy, string) result
(** Parse a strategy name ([Error] carries a human-readable message
    listing the accepted spellings).
    @deprecated use {!Tm_plan.Hint.of_string} — plan hints subsume bare
    strategy strings; this remains for callers that genuinely need a
    strategy (index sizing, ablations). *)

type t = {
  doc : Tm_xml.Xml_tree.document;
  dict : Dictionary.t;
  catalog : Schema_catalog.t;
  pager : Pager.t;
  pool : Buffer_pool.t;
  edge : Edge_table.t;
  rootpaths : Family.t option;
  datapaths : Family.t option;
  dataguide : Family.t option;
  index_fabric : Family.t option;
  asr_rels : Asr.t option;
  ji : Join_index.t option;
  mutable next_id : int;  (** next fresh node id (see {!Updates}) *)
  mutable generation : int;
      (** process-unique index generation: minted at {!create}, bumped
          by {!note_index_change} — the plan cache's invalidation key *)
  mutable last_txn : int;
      (** highest durably committed transaction id folded into this
          image (0 = never durably updated); maintained by
          {!Durable} and marshalled with snapshots *)
}

val create :
  ?strategies:strategy list ->
  ?pool_capacity:int ->
  ?page_size:int ->
  ?checksums:bool ->
  ?idlist_codec:[ `Delta | `Raw ] ->
  ?schema_compressed:bool ->
  ?head_filter:(int -> bool) ->
  ?par:Tm_par.Pool.t ->
  Tm_xml.Xml_tree.document ->
  t
(** Build a database. [strategies] selects which index sets to
    materialize (default all; the Edge table is always built — it is
    the base storage format and supplies planner statistics).
    [checksums] (default true) controls per-page CRC32 verification in
    the underlying {!Pager}; disable only to measure its overhead.
    [idlist_codec], [schema_compressed] and [head_filter] are the
    Section 4 compression options for ROOTPATHS/DATAPATHS. [par]
    parallelizes ROOTPATHS/DATAPATHS/DataGuide/Index-Fabric
    construction across a domain pool; the resulting indices are
    byte-identical to a sequential build. *)

val built_strategies : t -> strategy list
(** The strategies whose index sets are materialized, in
    {!all_strategies} order (always includes [Edge]). *)

(** {1 Index-set access}

    [find_*] return [None] when the corresponding index set was not
    materialized; {!require} is the single checked gateway from a
    strategy to the physical structures its plans need. *)

val find_rootpaths : t -> Family.t option
val find_datapaths : t -> Family.t option
val find_dataguide : t -> Family.t option
val find_index_fabric : t -> Family.t option
val find_asr_rels : t -> Asr.t option
val find_ji : t -> Join_index.t option

exception Index_not_built of strategy
(** A strategy was requested whose index set was not materialized at
    {!create} time. *)

type built =
  | Built_rootpaths of Family.t
  | Built_datapaths of Family.t
  | Built_edge  (** the Edge table is part of every database *)
  | Built_dataguide of Family.t
  | Built_index_fabric of { fabric : Family.t; dataguide : Family.t }
      (** IF+Edge plans fall back to the DataGuide for structure-only
          branches, so both are materialized together *)
  | Built_asr of Asr.t
  | Built_ji of Join_index.t

val require : t -> strategy -> built
(** The physical structures behind [strategy].
    @raise Index_not_built when they were not materialized. *)

val strategy_size_bytes : t -> strategy -> int
(** Index space per strategy, with Figure 9's accounting. *)

val drop_caches : t -> unit
(** Simulate a cold cache. *)

val generation : t -> int
(** The database's current index generation (see {!note_index_change}). *)

val note_index_change : t -> unit
(** Record that the physical indexes changed (incremental update,
    rebuild): drops this database's cached plans from the
    {!Tm_plan.Cache} and mints a fresh generation, so stale plans can
    never be served. *)

val document_stats : t -> int * int * int * int
(** (elements, values, depth, distinct schema paths). *)
