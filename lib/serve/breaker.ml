(* Circuit breaker for a degraded-mode handler: repeated storage-class
   failures (Corrupt_page, Io_error, Poisoned) trip the breaker open;
   while open, requests are rejected up front with a Retry-After instead
   of being run against an index that keeps failing. After a cooldown
   the breaker half-opens and admits exactly one probe: a successful
   probe closes it, a failing one re-opens it with the cooldown doubled
   (up to a cap). *)

(* A breaker transition is the serve layer's loudest distress signal,
   so each one lands in all three observability tiers: counters for
   /metrics, a warning carrying the failure class, and flight-recorder
   events (plus a post-mortem dump on open — by the time an operator
   looks, the events leading up to the trip are exactly what's
   wanted). *)
let c_opened = Tm_obs.Obs.counter "breaker.opened"
let c_closed = Tm_obs.Obs.counter "breaker.closed"
let c_rejections = Tm_obs.Obs.counter "breaker.rejections"

type state =
  | Closed of { mutable failures : int }
  | Open of { until_ns : int64; cooldown_ms : float }
  | Half_open of { cooldown_ms : float; mutable probing : bool }

type t = {
  lock : Mutex.t;
  failure_threshold : int;
  base_cooldown_ms : float;
  max_cooldown_ms : float;
  mutable state : state; [@analyze.guarded_by "lock"]
  mutable trips : int; [@analyze.guarded_by "lock"]
}

type decision = Allow | Reject of { retry_after_ms : float }

let create ?(failure_threshold = 5) ?(cooldown_ms = 1000.0) ?(max_cooldown_ms = 30_000.0) () =
  if failure_threshold < 1 then invalid_arg "Breaker.create: failure_threshold must be >= 1";
  if cooldown_ms <= 0.0 || max_cooldown_ms < cooldown_ms then
    invalid_arg "Breaker.create: need 0 < cooldown_ms <= max_cooldown_ms";
  {
    lock = Mutex.create ();
    failure_threshold;
    base_cooldown_ms = cooldown_ms;
    max_cooldown_ms;
    state = Closed { failures = 0 };
    trips = 0;
  }

let now () = Monotonic_clock.now ()
let ns_of_ms ms = Int64.of_float (ms *. 1e6)
let ms_until until_ns = Int64.to_float (Int64.sub until_ns (now ())) /. 1e6

let admit t =
  let d =
    Mutex.protect t.lock (fun () ->
        match t.state with
        | Closed _ -> `Allow
        | Open { until_ns; cooldown_ms } ->
          let remaining = ms_until until_ns in
          if remaining > 0.0 then `Reject remaining
          else begin
            (* Cooldown over: half-open, and this caller is the probe. *)
            t.state <- Half_open { cooldown_ms; probing = true };
            `Probe
          end
        | Half_open h ->
          if h.probing then `Reject h.cooldown_ms
          else begin
            h.probing <- true;
            `Allow
          end)
  in
  match d with
  | `Allow -> Allow
  | `Probe ->
    Tm_obs.Flight.emit Tm_obs.Flight.Breaker_half_open 0 0 "";
    Allow
  | `Reject retry_after_ms ->
    Tm_obs.Obs.incr c_rejections;
    Tm_obs.Flight.emit Tm_obs.Flight.Breaker_reject (int_of_float retry_after_ms) 0 "";
    Reject { retry_after_ms }

let success t =
  let closed =
    Mutex.protect t.lock (fun () ->
        match t.state with
        | Closed c ->
          c.failures <- 0;
          false
        | Open _ | Half_open _ ->
          t.state <- Closed { failures = 0 };
          true)
  in
  if closed then begin
    Tm_obs.Obs.incr c_closed;
    Tm_obs.Flight.emit Tm_obs.Flight.Breaker_close 0 0 ""
  end

let trip t cooldown_ms =
  t.trips <- t.trips + 1;
  t.state <- Open { until_ns = Int64.add (now ()) (ns_of_ms cooldown_ms); cooldown_ms }

let failure ?(cls = "unclassified") t =
  let opened =
    Mutex.protect t.lock (fun () ->
        match t.state with
        | Closed c ->
          c.failures <- c.failures + 1;
          if c.failures >= t.failure_threshold then begin
            trip t t.base_cooldown_ms;
            Some c.failures
          end
          else None
        | Half_open { cooldown_ms; _ } ->
          (* The probe failed: back off harder. *)
          trip t (Float.min (cooldown_ms *. 2.0) t.max_cooldown_ms);
          Some t.failure_threshold
        | Open _ -> None)
  in
  (* Side effects (warning handler, dump I/O) stay outside the lock. *)
  match opened with
  | None -> ()
  | Some failures ->
    Tm_obs.Obs.incr c_opened;
    Tm_obs.Obs.warn ~site:"serve.breaker"
      (Printf.sprintf "breaker opened after %d consecutive failures (%s)" failures cls);
    Tm_obs.Flight.emit Tm_obs.Flight.Breaker_open failures 0 cls;
    if Tm_obs.Flight.enabled () then
      ignore (Tm_obs.Flight.dump ~reason:("breaker-open: " ^ cls))

let state t =
  Mutex.protect t.lock (fun () ->
      match t.state with
      | Closed _ -> `Closed
      | Open { until_ns; _ } when ms_until until_ns > 0.0 -> `Open
      | Open _ | Half_open _ -> `Half_open)

let trips t = Mutex.protect t.lock (fun () -> t.trips)
