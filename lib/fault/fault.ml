(** Process-global failpoint registry (see the interface for the model).

    Design notes:

    - The registry is a snapshot array behind one [Atomic.t]; arming or
      clearing swaps a new array in (arming is rare, firing is hot).
      Sites scan the current snapshot linearly — registries hold a
      handful of entries, so a scan is cheaper than hashing, and the
      un-armed fast path is one atomic load of an empty array.
    - Per-site trigger state (call counter) is an [Atomic.t] shared by
      every domain, so an [every:N] schedule is global: under [jobs=4]
      exactly one of each N concurrent calls fires, the property the
      retry tests rely on.
    - The probability trigger uses a splitmix64 PRNG behind its own
      [Atomic.t] so concurrent draws never repeat; it is deliberately
      {e not} seeded from the clock — a fixed seed keeps CI fault legs
      reproducible run to run. *)

exception Io_error of { site : string; detail : string }

let () =
  Printexc.register_printer (function
    | Io_error { site; detail } -> Some (Printf.sprintf "Io_error(%s: %s)" site detail)
    | _ -> None)

type action = Fail | Torn | Bitflip | Delay_ms of int
type trigger = Every of int | Prob of float | After of int
type spec = { site : string; trigger : trigger; action : action }

type armed = {
  a_spec : spec;
  a_calls : int Atomic.t;
  a_hits : int Atomic.t;
  a_counter : Tm_obs.Obs.counter;  (** [fault.<site>.hits] mirror in the obs sink *)
}

let registry : armed array Atomic.t = Atomic.make [||]
let registry_lock = Mutex.create ()

(* splitmix-style mixer on the 63-bit native int (constants truncated
   to fit); fixed seed for reproducible CI fault legs. *)
let prng_state = Atomic.make 0x1E3779B97F4A7C15

let prng_unit () =
  let rec next () =
    let old = Atomic.get prng_state in
    let s = old + 0x1E3779B97F4A7C15 in
    if not (Atomic.compare_and_set prng_state old s) then next ()
    else begin
      let z = (s lxor (s lsr 30)) * 0x2F58476D1CE4E5B9 in
      let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
      z lxor (z lsr 31)
    end
  in
  float_of_int (next () land max_int) /. float_of_int max_int

let validate = function
  | Every n when n < 1 -> invalid_arg "Fault.inject: every:N requires N >= 1"
  | After k when k < 0 -> invalid_arg "Fault.inject: after:K requires K >= 0"
  | Prob p when not (p >= 0.0 && p <= 1.0) ->
    invalid_arg "Fault.inject: prob:P requires 0 <= P <= 1"
  | Every _ | After _ | Prob _ -> ()

let arm spec =
  {
    a_spec = spec;
    a_calls = Atomic.make 0;
    a_hits = Atomic.make 0;
    a_counter = Tm_obs.Obs.counter (Printf.sprintf "fault.%s.hits" spec.site);
  }

let swap f = Mutex.protect registry_lock (fun () -> Atomic.set registry (f (Atomic.get registry)))

let inject ?(action = Fail) ~site trigger =
  validate trigger;
  let entry = arm { site; trigger; action } in
  swap (fun arr ->
      let kept = Array.to_list arr |> List.filter (fun a -> not (String.equal a.a_spec.site site)) in
      Array.of_list (kept @ [ entry ]))

let clear ?site () =
  swap (fun arr ->
      match site with
      | None -> [||]
      | Some s ->
        Array.of_list
          (Array.to_list arr |> List.filter (fun a -> not (String.equal a.a_spec.site s))))

let find site =
  let arr = Atomic.get registry in
  let n = Array.length arr in
  let rec go i =
    if i >= n then None
    else if String.equal arr.(i).a_spec.site site then Some arr.(i)
    else go (i + 1)
  in
  go 0

let active () = Array.to_list (Atomic.get registry) |> List.map (fun a -> a.a_spec)
let calls site = match find site with Some a -> Atomic.get a.a_calls | None -> 0
let hits site = match find site with Some a -> Atomic.get a.a_hits | None -> 0

let fire site =
  match find site with
  | None -> None
  | Some a ->
    let call = Atomic.fetch_and_add a.a_calls 1 + 1 in
    let fired =
      match a.a_spec.trigger with
      | Every n -> call mod n = 0
      | After k -> call > k
      | Prob p -> prng_unit () < p
    in
    if not fired then None
    else begin
      Atomic.incr a.a_hits;
      Tm_obs.Obs.incr a.a_counter;
      Tm_obs.Flight.emit Tm_obs.Flight.Fault_hit (Atomic.get a.a_hits) 0 site;
      Some a.a_spec.action
    end

(* Busy-wait: storage sits below any scheduler, so a sleep syscall is
   out of place here; a calibration-free relax loop approximates the
   requested delay well enough for injection purposes. *)
let busy_wait_ms ms =
  let spins_per_ms = 200_000 in
  for _ = 1 to ms * spins_per_ms do
    Domain.cpu_relax ()
  done

let io_error site detail = raise (Io_error { site; detail })

let apply ~site data =
  match fire site with
  | None -> data
  | Some Fail -> io_error site "injected failure"
  | Some Torn ->
    (* A torn transfer: the first half made it, the rest reads back as
       zeroes — exactly the page state after a crash mid-write. *)
    let copy = Bytes.copy data in
    let half = Bytes.length copy / 2 in
    Bytes.fill copy half (Bytes.length copy - half) '\x00';
    copy
  | Some Bitflip ->
    if Bytes.length data = 0 then data
    else begin
      let copy = Bytes.copy data in
      let off = Bytes.length copy / 3 in
      Bytes.set copy off (Char.chr (Char.code (Bytes.get copy off) lxor 0x10));
      copy
    end
  | Some (Delay_ms ms) ->
    busy_wait_ms ms;
    data

let guard site =
  match fire site with
  | None -> ()
  | Some (Fail | Torn | Bitflip) -> io_error site "injected failure"
  | Some (Delay_ms ms) -> busy_wait_ms ms

(* ------------------------------------------------------------------ *)
(* Spec syntax                                                         *)
(* ------------------------------------------------------------------ *)

let env_var = "TWIGMATCH_FAILPOINTS"

let parse_action = function
  | "fail" -> Ok Fail
  | "torn" -> Ok Torn
  | "bitflip" -> Ok Bitflip
  | s -> (
    match String.index_opt s ':' with
    | Some i when String.equal (String.sub s 0 i) "delay" -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some ms when ms >= 0 -> Ok (Delay_ms ms)
      | Some _ | None -> Error (Printf.sprintf "bad delay %S (want delay:MS)" s))
    | _ -> Error (Printf.sprintf "unknown action %S (want fail, torn, bitflip or delay:MS)" s))

let parse_trigger s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad trigger %S (want every:N, prob:P or after:K)" s)
  | Some i -> (
    let mode = String.sub s 0 i and arg = String.sub s (i + 1) (String.length s - i - 1) in
    match mode with
    | "every" -> (
      match int_of_string_opt arg with
      | Some n when n >= 1 -> Ok (Every n)
      | Some _ | None -> Error (Printf.sprintf "bad every:N count %S" arg))
    | "after" -> (
      match int_of_string_opt arg with
      | Some k when k >= 0 -> Ok (After k)
      | Some _ | None -> Error (Printf.sprintf "bad after:K count %S" arg))
    | "prob" -> (
      match float_of_string_opt arg with
      | Some p when p >= 0.0 && p <= 1.0 -> Ok (Prob p)
      | Some _ | None -> Error (Printf.sprintf "bad prob:P probability %S" arg))
    | m -> Error (Printf.sprintf "unknown trigger mode %S (want every, prob or after)" m))

let parse_one s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "bad failpoint %S (want site=trigger[,action])" s)
  | Some i -> (
    let site = String.trim (String.sub s 0 i) in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    if String.equal site "" then Error (Printf.sprintf "empty site in %S" s)
    else
      let trigger_s, action_s =
        (* the action is the last ','-component that is not part of a
           delay:MS trigger argument; triggers never contain ',' *)
        match String.index_opt rest ',' with
        | None -> (rest, None)
        | Some j ->
          (String.sub rest 0 j, Some (String.sub rest (j + 1) (String.length rest - j - 1)))
      in
      match parse_trigger (String.trim trigger_s) with
      | Error e -> Error e
      | Ok trigger -> (
        match action_s with
        | None -> Ok { site; trigger; action = Fail }
        | Some a -> (
          match parse_action (String.trim a) with
          | Error e -> Error e
          | Ok action -> Ok { site; trigger; action })))

let parse s =
  let parts =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun p -> not (String.equal p ""))
  in
  List.fold_left
    (fun acc part ->
      match (acc, parse_one part) with
      | Error e, _ -> Error e
      | Ok specs, Ok spec -> Ok (specs @ [ spec ])
      | Ok _, Error e -> Error e)
    (Ok []) parts

let install_env () =
  match Sys.getenv_opt env_var with
  | None -> clear ()
  | Some s -> (
    match parse s with
    | Ok specs ->
      clear ();
      List.iter (fun { site; trigger; action } -> inject ~action ~site trigger) specs
    | Error e ->
      (* Through the structured hook (stderr by default) so a serve
         process can surface the misconfiguration instead of losing it
         in a log nobody tails. *)
      Tm_obs.Obs.warn ~site:"fault.env" (Printf.sprintf "ignoring %s: %s" env_var e);
      clear ())

let () = install_env ()
