(** Query twig patterns (paper Section 2.1).

    A twig is a node-labeled tree; edges are parent-child ([Child]) or
    ancestor-descendant ([Descendant]). Node labels are element tags or
    attribute names; a node may carry an equality predicate on its leaf
    value ([value = Some "XML"]). Exactly one node is the {e output}
    node whose matched data-node ids a query returns (for an XPath
    expression, the last step of the trunk).

    Each twig node carries a dense [uid] (pre-order over the twig),
    which the decomposition and executor use to name join columns. *)

type axis = Child | Descendant

(** One bound of a value range; [binc] = inclusive. Comparison is
    lexicographic on the value strings (documented limitation: numeric
    comparison would need typed values; the paper's future-work pointer
    to multidimensional access methods applies). *)
type bound = { bval : string; binc : bool }

(** Range predicate on a node's leaf value, e.g. [. >= 'a' and . < 'm']. *)
type range = { rlo : bound option; rhi : bound option }

let range_matches r v =
  (match r.rlo with
  | None -> true
  | Some { bval; binc } ->
    let c = String.compare v bval in
    if binc then c >= 0 else c > 0)
  && (match r.rhi with
     | None -> true
     | Some { bval; binc } ->
       let c = String.compare v bval in
       if binc then c <= 0 else c < 0)

type node = {
  uid : int;
  name : string;
  value : string option;  (** equality predicate *)
  range : range option;  (** inequality predicate (never with [value]) *)
  output : bool;
  branches : (axis * node) list;
}

type t = { root_axis : axis; root : node }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(** Unnumbered spec, turned into a twig by {!make} (which assigns uids
    and checks that exactly one output node exists). *)
type spec = {
  s_name : string;
  s_value : string option;
  s_range : range option;
  s_output : bool;
  s_branches : (axis * spec) list;
}

let spec ?value ?range ?(output = false) name branches =
  { s_name = name; s_value = value; s_range = range; s_output = output; s_branches = branches }

let make root_axis root_spec =
  let counter = ref 0 in
  let outputs = ref 0 in
  let rec go s =
    let uid = !counter in
    incr counter;
    if s.s_output then incr outputs;
    if s.s_value <> None && s.s_range <> None then
      invalid_arg "Twig.make: a node cannot have both an equality and a range predicate";
    let branches = List.map (fun (ax, c) -> (ax, go c)) s.s_branches in
    { uid; name = s.s_name; value = s.s_value; range = s.s_range; output = s.s_output; branches }
  in
  let root = go root_spec in
  if !outputs <> 1 then
    invalid_arg (Printf.sprintf "Twig.make: expected exactly 1 output node, found %d" !outputs);
  { root_axis; root }

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let rec fold_nodes f acc node =
  List.fold_left (fun acc (_, c) -> fold_nodes f acc c) (f acc node) node.branches

let node_count t = fold_nodes (fun acc _ -> acc + 1) 0 t.root

let output_node t =
  match fold_nodes (fun acc n -> if n.output then Some n else acc) None t.root with
  | Some n -> n
  | None -> assert false

(** Twig nodes where linear paths diverge — the join points. A node
    with several branches splits paths; so does a node with a value
    predicate {e and} at least one branch (its value path ends there
    while the branch continues, see {!Decompose.linear_paths}). *)
let branch_nodes t =
  List.rev
    (fold_nodes
       (fun acc n ->
         if
           List.length n.branches > 1
           || (n.branches <> [] && (n.value <> None || n.range <> None))
         then n :: acc
         else acc)
       [] t.root)

(** Number of leaf-to-root paths, i.e. the paper's "number of branches". *)
let leaf_count t =
  fold_nodes (fun acc n -> if n.branches = [] then acc + 1 else acc) 0 t.root

let has_descendant_edge t =
  t.root_axis = Descendant
  || fold_nodes
       (fun acc n -> acc || List.exists (fun (ax, _) -> ax = Descendant) n.branches)
       false t.root

(* ------------------------------------------------------------------ *)
(* Printing (round-trips through the XPath parser for simple twigs)    *)
(* ------------------------------------------------------------------ *)

let axis_str = function Child -> "/" | Descendant -> "//"

let range_to_string r =
  String.concat ""
    [
      (match r.rlo with
      | Some { bval; binc } -> Printf.sprintf "[. %s '%s']" (if binc then ">=" else ">") bval
      | None -> "");
      (match r.rhi with
      | Some { bval; binc } -> Printf.sprintf "[. %s '%s']" (if binc then "<=" else "<") bval
      | None -> "");
    ]

let rec node_to_string n =
  let self = n.name in
  let preds =
    List.map (fun (ax, c) -> Printf.sprintf "[%s]" (branch_to_string ax c)) n.branches
  in
  self ^ String.concat "" preds
  ^ (match n.value with Some v -> Printf.sprintf "[. = '%s']" v | None -> "")
  ^ (match n.range with Some r -> range_to_string r | None -> "")

and branch_to_string ax c =
  let prefix = match ax with Child -> "" | Descendant -> ".//" in
  prefix ^ path_to_string c

and path_to_string n =
  match (n.branches, n.value, n.range) with
  | [ (ax, c) ], None, None -> n.name ^ axis_str ax ^ path_to_string c
  | _ -> node_to_string n

let to_string t = axis_str t.root_axis ^ path_to_string t.root

(* ------------------------------------------------------------------ *)
(* Shape normalization (plan-cache keys)                               *)
(* ------------------------------------------------------------------ *)

(* Two twigs share a shape when they have the same tags, axes and
   predicate *kinds* — the literal values are erased ("=?" / range-bound
   markers), and sibling branches are sorted, so [a[b='x'][c]] and
   [a[c][b='y']] normalize identically. The output node keeps its "!"
   marker: moving the output changes the needed join columns, hence the
   plan. *)
let rec shape_node n =
  let preds =
    (match n.value with Some _ -> "{=?}" | None -> "")
    ^
    match n.range with
    | Some r ->
      Printf.sprintf "{%s?%s}"
        (match r.rlo with Some { binc = true; _ } -> ">=" | Some _ -> ">" | None -> "")
        (match r.rhi with Some { binc = true; _ } -> "<=" | Some _ -> "<" | None -> "")
    | None -> ""
  in
  let branches =
    List.map (fun (ax, c) -> "(" ^ axis_str ax ^ shape_node c ^ ")") n.branches
    |> List.sort String.compare
  in
  n.name ^ (if n.output then "!" else "") ^ preds ^ String.concat "" branches

let shape t = axis_str t.root_axis ^ shape_node t.root
