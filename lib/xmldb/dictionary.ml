(** Tag/attribute-name dictionary (paper Section 3.1).

    Schema components (element tags and attribute names) are
    dictionary-encoded as fixed-width 2-byte designators, the relational
    analogue of the paper's "special characters" (B for book, U for
    allauthors, ...). Fixed width keeps reversal and prefix matching on
    unit boundaries; the bytes avoid 0x00 so designator strings can be
    embedded as components of composite B+-tree keys. *)

type t = {
  (* One lock over the whole structure: interning during a durable
     ingest races concurrent readers (epoch-pinned queries resolving
     designators), and a Hashtbl resize under a concurrent find is
     undefined. Uncontended in single-writer workloads. A ticketed
     Tm_storage.Lock (not a bare Mutex) so the dictionary stays
     marshal-safe inside snapshots. *)
  lock : Tm_storage.Lock.t;
  by_name : (string, int) Hashtbl.t;
  mutable by_id : string array;
  mutable next : int;
}

let byte_base = 0x04
let byte_range = 0xfb - byte_base (* 247 values per byte, no 0x00..0x03 *)

let max_tags = byte_range * byte_range

let create () =
  { lock = Tm_storage.Lock.create Tm_storage.Lock.Inner; by_name = Hashtbl.create 64; by_id = Array.make 64 ""; next = 0 }

let tag_count t = Tm_storage.Lock.with_lock t.lock (fun () -> t.next)

(** Id for [name], allocating one on first sight. *)
let intern t name =
  Tm_storage.Lock.with_lock t.lock (fun () ->
      match Hashtbl.find_opt t.by_name name with
      | Some id -> id
      | None ->
        if t.next >= max_tags then
          invalid_arg
            (Printf.sprintf "Dictionary.intern: cannot intern %S, dictionary full (max %d tags)"
               name max_tags);
        let id = t.next in
        t.next <- id + 1;
        if id >= Array.length t.by_id then begin
          let arr = Array.make (2 * Array.length t.by_id) "" in
          Array.blit t.by_id 0 arr 0 id;
          t.by_id <- arr
        end;
        t.by_id.(id) <- name;
        Hashtbl.replace t.by_name name id;
        id)

(** Id for [name] if already interned. *)
let find t name = Tm_storage.Lock.with_lock t.lock (fun () -> Hashtbl.find_opt t.by_name name)

let name t id =
  Tm_storage.Lock.with_lock t.lock (fun () ->
      if id < 0 || id >= t.next then invalid_arg "Dictionary.name: bad tag id";
      t.by_id.(id))

(** The 2-byte designator for a tag id. *)
let designator id =
  let hi = byte_base + (id / byte_range) and lo = byte_base + (id mod byte_range) in
  let b = Bytes.create 2 in
  Bytes.set b 0 (Char.chr hi);
  Bytes.set b 1 (Char.chr lo);
  Bytes.to_string b

let of_designator s pos =
  let hi = Char.code s.[pos] - byte_base and lo = Char.code s.[pos + 1] - byte_base in
  (hi * byte_range) + lo
