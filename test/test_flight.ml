(* Flight recorder: zero cost when off, lock-free per-domain rings,
   trace correlation, CRC-framed post-mortem dumps and their damage
   tolerance, and the Chrome export shape. *)

module Flight = Tm_obs.Flight
module Obs = Tm_obs.Obs
module Export = Tm_obs.Export

let check = Alcotest.check

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.equal (String.sub s i n) sub || go (i + 1)) in
  go 0

(* Every test leaves the recorder off and the rings empty. *)
let fresh f =
  Flight.disable ();
  Flight.clear ();
  Fun.protect
    ~finally:(fun () ->
      Flight.disable ();
      Flight.clear ())
    f

(* ------------------------------------------------------------------ *)
(* Disabled cost                                                       *)
(* ------------------------------------------------------------------ *)

(* The Obs contract extended to the recorder: a disabled emit is one
   atomic load — no ring registration, no clock read, no allocation.
   Minor-heap words are a direct allocation meter. *)
let test_disabled_allocates_nothing () =
  fresh @@ fun () ->
  let before_events = Flight.total_events () in
  (* warm up any lazy setup outside the measured window *)
  Flight.emit Flight.Wal_fsync 0 0 "";
  let w0 = Gc.minor_words () in
  for i = 1 to 100_000 do
    Flight.emit Flight.Wal_fsync i 0 ""
  done;
  let dw = Gc.minor_words () -. w0 in
  check Alcotest.bool
    (Printf.sprintf "no allocation across 100k disabled emits (%.0f words)" dw)
    true (dw < 256.0);
  check Alcotest.int "nothing recorded" before_events (Flight.total_events ())

let test_disabled_records_nothing () =
  fresh @@ fun () ->
  Flight.emit Flight.Poisoned 1 2 "should vanish";
  check Alcotest.int "empty snapshot" 0 (List.length (Flight.snapshot ()))

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let test_emit_and_snapshot () =
  fresh @@ fun () ->
  Flight.with_enabled true @@ fun () ->
  Flight.emit Flight.Wal_append 67 128 "";
  Flight.emit Flight.Txn_commit 7 3 "";
  Flight.emit Flight.Span_begin 0 0 "probe";
  match Flight.snapshot () with
  | [ a; b; c ] ->
    check Alcotest.bool "kinds in order" true
      (a.Flight.e_kind = Flight.Wal_append
      && b.Flight.e_kind = Flight.Txn_commit
      && c.Flight.e_kind = Flight.Span_begin);
    check Alcotest.int "a payload" 67 a.Flight.e_a;
    check Alcotest.int "b payload" 128 a.Flight.e_b;
    check Alcotest.string "detail payload" "probe" c.Flight.e_detail;
    check Alcotest.bool "timestamps non-decreasing" true
      (a.Flight.e_ts_ns <= b.Flight.e_ts_ns && b.Flight.e_ts_ns <= c.Flight.e_ts_ns);
    check Alcotest.bool "dense ascending seq" true
      (b.Flight.e_seq = a.Flight.e_seq + 1 && c.Flight.e_seq = b.Flight.e_seq + 1)
  | es -> Alcotest.failf "expected 3 events, got %d" (List.length es)

let test_trace_correlation () =
  fresh @@ fun () ->
  Flight.with_enabled true @@ fun () ->
  Flight.emit Flight.Sem_acquire 1 0 "";
  Obs.with_context 42 (fun () -> Flight.emit Flight.Sem_acquire 2 0 "");
  Flight.emit_traced 7 Flight.Sem_acquire 3 0 "";
  match Flight.snapshot () with
  | [ a; b; c ] ->
    check Alcotest.int "no ambient context -> 0" 0 a.Flight.e_trace;
    check Alcotest.int "ambient context picked up" 42 b.Flight.e_trace;
    check Alcotest.int "explicit trace wins" 7 c.Flight.e_trace
  | es -> Alcotest.failf "expected 3 events, got %d" (List.length es)

(* Ring wrap: a fresh domain picks up the capacity configured at enable
   time, and only the newest [capacity] events survive. *)
let test_ring_wrap () =
  fresh @@ fun () ->
  Flight.enable ~capacity:16 ();
  let events =
    Domain.join
      (Domain.spawn (fun () ->
           for i = 1 to 100 do
             Flight.emit Flight.Pool_evict i 0 ""
           done;
           List.filter
             (fun e -> e.Flight.e_kind = Flight.Pool_evict)
             (Flight.snapshot ())))
  in
  (* The snapshot conservatively discards the one slot a concurrent
     write could be tearing, so a quiescent full ring yields
     capacity - 1 events. *)
  check Alcotest.int "window is the ring capacity minus the write slot" 15
    (List.length events);
  let a_values = List.map (fun e -> e.Flight.e_a) events in
  check Alcotest.(list int) "newest events survive the wrap"
    (List.init 15 (fun i -> 86 + i))
    a_values;
  let seqs = List.map (fun e -> e.Flight.e_seq) events in
  check Alcotest.(list int) "seq stays dense across the wrap"
    (List.init 15 (fun i -> 85 + i))
    seqs

let test_obs_span_emits_flight_events () =
  fresh @@ fun () ->
  Flight.with_enabled true @@ fun () ->
  Obs.with_enabled true (fun () ->
      ignore (Obs.trace "root" (fun () -> Obs.with_span "inner" (fun () -> 42))));
  let names =
    List.map
      (fun e -> (Flight.kind_name e.Flight.e_kind, e.Flight.e_detail))
      (Flight.snapshot ())
  in
  (* only the trace root reaches the flight ring; operator-level spans
     stay in the trace tree (they would dominate the timeline) *)
  List.iter
    (fun expected ->
      check Alcotest.bool
        (Printf.sprintf "(%s, %s) recorded" (fst expected) (snd expected))
        true (List.mem expected names))
    [ ("span.begin", "root"); ("span.end", "root") ];
  List.iter
    (fun absent ->
      check Alcotest.bool
        (Printf.sprintf "(%s, %s) not recorded" (fst absent) (snd absent))
        false (List.mem absent names))
    [ ("span.begin", "inner"); ("span.end", "inner") ]

let test_kind_codes_roundtrip () =
  Array.iter
    (fun k ->
      check Alcotest.bool (Flight.kind_name k ^ " round-trips") true
        (Flight.kind_of_code (Flight.kind_code k) == k))
    (Array.init 37 Flight.kind_of_code);
  check Alcotest.bool "unknown future code decodes to Unknown" true
    (Flight.kind_of_code 200 = Flight.Unknown)

(* ------------------------------------------------------------------ *)
(* Post-mortem dumps                                                   *)
(* ------------------------------------------------------------------ *)

let temp_dump () = Filename.temp_file "twigql-flight" ".dump"

let test_dump_roundtrip () =
  fresh @@ fun () ->
  Flight.with_enabled true @@ fun () ->
  Flight.emit_traced 9 Flight.Wal_append 67 4096 "";
  Flight.emit Flight.Txn_abort (-3) 2 "rolled back";
  Flight.emit Flight.Breaker_open 5 0 "io-error";
  let path = temp_dump () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Flight.dump_to ~path ~reason:"unit-test";
  let d = Flight.load_dump path in
  check Alcotest.int "version" 1 d.Flight.d_version;
  check Alcotest.int "pid" (Unix.getpid ()) d.Flight.d_pid;
  check Alcotest.string "reason" "unit-test" d.Flight.d_reason;
  check Alcotest.bool "footer intact" true (d.Flight.d_damaged = None);
  check Alcotest.int "footer counts every event" 3 d.Flight.d_total;
  let live = Flight.snapshot () in
  let dumped = Flight.merge_events d.Flight.d_domains in
  check Alcotest.int "all events round-trip" (List.length live) (List.length dumped);
  List.iter2
    (fun (l : Flight.event) (r : Flight.event) ->
      check Alcotest.bool "event identical" true
        (l.Flight.e_kind = r.Flight.e_kind
        && l.Flight.e_ts_ns = r.Flight.e_ts_ns
        && l.Flight.e_trace = r.Flight.e_trace
        && l.Flight.e_a = r.Flight.e_a
        && l.Flight.e_b = r.Flight.e_b
        && String.equal l.Flight.e_detail r.Flight.e_detail))
    live dumped

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Damage past the header parses up to the damage; a clobbered header
   is not a dump at all. *)
let test_dump_damage () =
  fresh @@ fun () ->
  Flight.with_enabled true @@ fun () ->
  for i = 1 to 50 do
    Flight.emit Flight.Epoch_pin i 0 ""
  done;
  let path = temp_dump () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Flight.dump_to ~path ~reason:"to-be-damaged";
  let raw = read_file path in
  (* flip one byte near the end: inside the domain frame or the footer *)
  let damaged = Bytes.of_string raw in
  let pos = Bytes.length damaged - 6 in
  Bytes.set damaged pos (Char.chr (Char.code (Bytes.get damaged pos) lxor 0xff));
  write_file path (Bytes.to_string damaged);
  let d = Flight.load_dump path in
  check Alcotest.bool "damage detected" true (d.Flight.d_damaged <> None);
  check Alcotest.string "header survives" "to-be-damaged" d.Flight.d_reason;
  (* truncation to garbage headers refuses to parse *)
  (match Flight.parse_dump "XY not a dump" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "headerless blob accepted");
  (* an empty reason for concern: CRC catches a single flipped payload
     byte mid-file too *)
  let mid = Bytes.of_string raw in
  let mpos = (Bytes.length mid / 2) + 7 in
  Bytes.set mid mpos (Char.chr (Char.code (Bytes.get mid mpos) lxor 0x01));
  write_file path (Bytes.to_string mid);
  match Flight.load_dump path with
  | d -> check Alcotest.bool "mid-file flip flagged" true (d.Flight.d_damaged <> None)
  | exception Failure _ -> () (* flipped inside the header frame: also caught *)

(* Writers keep emitting on their own domains while the main domain
   snapshots and dumps: the seqlock must never yield a torn event, so
   every dumped ring parses with dense ascending seq and non-decreasing
   timestamps. *)
let test_concurrent_dump_consistency () =
  fresh @@ fun () ->
  Flight.enable ~capacity:128 ();
  let stop = Atomic.make false in
  let writers =
    List.init 3 (fun w ->
        Domain.spawn (fun () ->
            let n = ref 0 in
            while not (Atomic.get stop) do
              incr n;
              Flight.emit Flight.Sem_acquire !n w "writer-storm"
            done;
            !n))
  in
  let path = temp_dump () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let dumps =
    List.init 10 (fun i ->
        ignore (Flight.snapshot ());
        Flight.dump_to ~path ~reason:(Printf.sprintf "storm-%d" i);
        Flight.load_dump path)
  in
  Atomic.set stop true;
  let written = List.fold_left ( + ) 0 (List.map Domain.join writers) in
  check Alcotest.bool "writers made progress" true (written > 0);
  List.iter
    (fun d ->
      check Alcotest.bool "no damage under concurrency" true (d.Flight.d_damaged = None);
      List.iter
        (fun (_dom, events) ->
          ignore
            (List.fold_left
               (fun prev (e : Flight.event) ->
                 (match prev with
                 | None -> ()
                 | Some (pseq, pts) ->
                   check Alcotest.int "seq dense within a domain" (pseq + 1) e.Flight.e_seq;
                   check Alcotest.bool "ts non-decreasing within a domain" true
                     (pts <= e.Flight.e_ts_ns));
                 Some (e.Flight.e_seq, e.Flight.e_ts_ns))
               None events))
        d.Flight.d_domains)
    dumps

let test_automatic_dump_trigger () =
  fresh @@ fun () ->
  let path = temp_dump () in
  Fun.protect
    ~finally:(fun () ->
      Flight.set_dump_path None;
      if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  (* disabled, or no path: the trigger stays quiet *)
  Flight.set_dump_path None;
  check Alcotest.bool "no path -> no dump" true (Flight.dump ~reason:"x" = None);
  Flight.with_enabled true @@ fun () ->
  Flight.set_dump_path (Some path);
  Flight.emit Flight.Poisoned 0 0 "wal: short write";
  (match Flight.dump ~reason:"durable-poison" with
  | None -> Alcotest.fail "expected a dump path"
  | Some p -> check Alcotest.string "dumped to the configured path" path p);
  let d = Flight.load_dump path in
  check Alcotest.string "reason recorded" "durable-poison" d.Flight.d_reason;
  let kinds =
    List.map (fun e -> e.Flight.e_kind) (Flight.merge_events d.Flight.d_domains)
  in
  check Alcotest.bool "the trigger logs itself as a Dump event" true
    (List.mem Flight.Dump kinds);
  match Flight.last_dump () with
  | None -> Alcotest.fail "last_dump metadata missing"
  | Some ld ->
    check Alcotest.string "last_dump path" path ld.Flight.ld_path;
    check Alcotest.string "last_dump reason" "durable-poison" ld.Flight.ld_reason

(* ------------------------------------------------------------------ *)
(* Exports                                                             *)
(* ------------------------------------------------------------------ *)

let test_chrome_export_shape () =
  fresh @@ fun () ->
  Flight.with_enabled true @@ fun () ->
  Obs.with_context 5 (fun () ->
      Flight.emit Flight.Req_begin 5 1 "";
      Flight.emit Flight.Wal_fsync 0 0 "";
      Flight.emit Flight.Req_end 200 0 "");
  let chrome = Export.flight_to_chrome (Flight.snapshot ()) in
  check Alcotest.bool "bare trace-event array" true
    (String.length chrome > 1 && chrome.[0] = '[' && chrome.[String.length chrome - 1] = ']');
  check Alcotest.bool "request spans pair B/E" true
    (contains chrome "\"ph\":\"B\"" && contains chrome "\"ph\":\"E\"");
  check Alcotest.bool "instants are thread-scoped" true
    (contains chrome "\"ph\":\"i\"" && contains chrome "\"s\":\"t\"");
  check Alcotest.bool "trace id correlates" true (contains chrome "\"trace\":5");
  let j = Export.flight_to_json (Flight.snapshot ()) in
  check Alcotest.bool "json names kinds" true
    (contains j "\"kind\":\"req.begin\"" && contains j "\"kind\":\"wal.fsync\"")

let () =
  Alcotest.run "flight"
    [
      ( "disabled",
        [
          Alcotest.test_case "allocates nothing" `Quick test_disabled_allocates_nothing;
          Alcotest.test_case "records nothing" `Quick test_disabled_records_nothing;
        ] );
      ( "recording",
        [
          Alcotest.test_case "emit and snapshot" `Quick test_emit_and_snapshot;
          Alcotest.test_case "trace correlation" `Quick test_trace_correlation;
          Alcotest.test_case "ring wrap" `Quick test_ring_wrap;
          Alcotest.test_case "obs spans emit events" `Quick test_obs_span_emits_flight_events;
          Alcotest.test_case "kind codes round-trip" `Quick test_kind_codes_roundtrip;
        ] );
      ( "dumps",
        [
          Alcotest.test_case "round-trip" `Quick test_dump_roundtrip;
          Alcotest.test_case "damage tolerance" `Quick test_dump_damage;
          Alcotest.test_case "concurrent dump consistency" `Quick
            test_concurrent_dump_consistency;
          Alcotest.test_case "automatic trigger" `Quick test_automatic_dump_trigger;
        ] );
      ( "exports",
        [ Alcotest.test_case "chrome and json shape" `Quick test_chrome_export_shape ] );
    ]
