(** Exporters over the {!Obs} sink: human-readable trace trees, JSON
    (traces and metrics), Chrome trace-event JSON, and
    Prometheus-style text metrics. *)

(** {1 JSON helpers} *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (no
    surrounding quotes). *)

val json_string : string -> string
(** A quoted, escaped JSON string literal. *)

val json_float : float -> string
(** A JSON-safe float rendering (no trailing-zero noise, never
    ["inf"]/["nan"]). *)

(** {1 Traces} *)

val trace_to_string : Obs.span -> string
(** Render a span tree with per-operator elapsed time, annotations,
    buffer-pool hit rates and counter deltas. *)

val pp_trace : Format.formatter -> Obs.span -> unit

val trace_to_json : Obs.span -> string

val trace_to_chrome : Obs.span -> string
(** Chrome trace-event JSON (an array of ["ph":"X"] complete events
    with [ts]/[dur] in microseconds, relative to the root span), as
    loaded by [chrome://tracing] and Perfetto. Span meta, counter
    deltas and GC deltas ride along in each event's [args]. *)

(** {1 Flight-recorder timelines} *)

val flight_to_json : Flight.event list -> string
(** Flight events as a JSON array (merged-timeline order is the
    caller's: pass {!Flight.snapshot} or {!Flight.merge_events}). *)

val flight_to_chrome : Flight.event list -> string
(** Merged-timeline Chrome trace-event JSON: one [tid] per domain on a
    shared clock, paired lifecycle events as ["B"]/["E"] slices, the
    rest as instants, correlated by [args.trace]. *)

(** {1 Histogram quantiles} *)

val quantile_of_counts : bounds:float array -> counts:int array -> float -> float option
(** Estimate the [q]-quantile (0 ≤ q ≤ 1) from bucket counts by linear
    interpolation within the crossing bucket ([histogram_quantile]
    style); [None] when the counts are all zero. [counts] has one more
    slot than [bounds] (the overflow bucket, which clamps to the
    largest finite bound). Raises [Invalid_argument] on q outside
    [0,1]. *)

val quantile : Obs.histogram -> float -> float option

val summary : Obs.histogram -> (string * float) list
(** [("p50", v); ("p95", v); ("p99", v)] — empty when the histogram has
    no observations. *)

(** {1 Derived gauges} *)

val pool_hit_rate : unit -> float option
(** Pool-wide buffer hit rate derived from the global hit/miss counters
    at export time ([None] before any pool traffic). *)

val all_gauges : unit -> (string * float) list
(** Registered {!Obs.gauge}s plus the derived [buffer_pool.hit_rate]. *)

(** {1 Metrics} *)

val metrics_to_json : ?extra:(string * string) list -> unit -> string
(** All registered counters, gauges and histograms (with p50/p95/p99
    summaries) as one JSON object. [extra] appends top-level fields
    whose values are already-rendered JSON. *)

val metrics_to_prometheus : unit -> string
(** Prometheus text exposition format ([# TYPE] lines, cumulative
    histogram buckets ending [le="+Inf"], gauges incl. the pool-wide
    hit rate). *)

val prometheus_name : string -> string
(** Mangle a sink metric name into a valid Prometheus metric name
    ([twigmatch_] prefix, non-alphanumerics replaced by [_]). *)

val prometheus_label_escape : string -> string
(** Escape a label value for the Prometheus text format (backslash,
    double quote, newline). *)
