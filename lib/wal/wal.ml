(** Checksummed, CRC-framed append-only write-ahead log.

    The WAL is the durability substrate under the pager: a transaction
    appends [Begin], its logical operations ([Op], opaque payload
    bytes — this library does not interpret them), the post-images of
    every page it dirtied ([Page], with the image's CRC32), and a
    [Commit]; the file is fsynced before the transaction is
    acknowledged. [Checkpoint] frames mark a snapshot boundary.

    Frame format (all integers via {!Tm_storage.Codec}):

    {v
      magic   "WF"                      2 bytes
      kind    'B'|'O'|'P'|'C'|'K'       1 byte
      len     u32                       payload length
      payload len bytes
      crc     u32                       CRC32 over kind + payload
    v}

    Recovery ({!scan}) walks frames from the start and stops at the
    first damaged one — bad magic, unknown kind, implausible length,
    CRC mismatch, or truncation. Everything after the last [Commit] (or
    [Checkpoint]) in the valid prefix is a partially-logged transaction
    and is discarded by truncating to {!scanned.committed_bytes}: the
    committed prefix is exactly what survives a crash at any byte
    offset.

    Failpoint sites (see {!Tm_fault.Fault}): [wal.append] fires on the
    encoded frame bytes before they reach the file (a [Fail] action is
    retried a bounded number of times and leaves nothing behind; [Torn]
    and [Bitflip] persist a damaged frame that {!scan} then rejects,
    simulating a crash mid-append); [wal.fsync] guards the fsync;
    [wal.replay] guards each frame decoded during {!scan}. *)

module Codec = Tm_storage.Codec

let c_appends = Tm_obs.Obs.counter "wal.appends"
let c_append_bytes = Tm_obs.Obs.counter "wal.append_bytes"
let c_syncs = Tm_obs.Obs.counter "wal.syncs"
let c_commits = Tm_obs.Obs.counter "wal.commits"
let c_replayed = Tm_obs.Obs.counter "wal.replayed_frames"
let c_truncations = Tm_obs.Obs.counter "wal.truncations"

let site_append = "wal.append"
let site_fsync = "wal.fsync"
let site_replay = "wal.replay"

type frame =
  | Begin of int  (** transaction id *)
  | Op of int * string  (** transaction id, opaque logical-operation payload *)
  | Page of { txn : int; page : int; crc : int; image : string }
      (** post-image redo record: page id, CRC32 of the image, image *)
  | Commit of int  (** transaction id *)
  | Checkpoint of int  (** last transaction id folded into the snapshot *)

type t = { path : string; fd : Unix.file_descr; mutable appended : int }

let magic = "WF"

exception Damaged of { offset : int; detail : string }

let () =
  Printexc.register_printer (function
    | Damaged { offset; detail } ->
      Some (Printf.sprintf "Wal.Damaged(offset %d: %s)" offset detail)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Frame codec                                                         *)
(* ------------------------------------------------------------------ *)

let encode_payload frame =
  let buf = Buffer.create 64 in
  let kind =
    match frame with
    | Begin txn ->
      Codec.add_varint buf txn;
      'B'
    | Op (txn, op) ->
      Codec.add_varint buf txn;
      Codec.add_lstring buf op;
      'O'
    | Page { txn; page; crc; image } ->
      Codec.add_varint buf txn;
      Codec.add_varint buf page;
      Codec.add_u32 buf crc;
      Codec.add_lstring buf image;
      'P'
    | Commit txn ->
      Codec.add_varint buf txn;
      'C'
    | Checkpoint txn ->
      Codec.add_varint buf txn;
      'K'
  in
  (kind, Buffer.contents buf)

let decode_payload kind payload =
  match kind with
  | 'B' ->
    let txn, _ = Codec.read_varint payload 0 in
    Begin txn
  | 'O' ->
    let txn, pos = Codec.read_varint payload 0 in
    let op, _ = Codec.read_lstring payload pos in
    Op (txn, op)
  | 'P' ->
    let txn, pos = Codec.read_varint payload 0 in
    let page, pos = Codec.read_varint payload pos in
    let crc, pos = Codec.read_u32 payload pos in
    let image, _ = Codec.read_lstring payload pos in
    Page { txn; page; crc; image }
  | 'C' ->
    let txn, _ = Codec.read_varint payload 0 in
    Commit txn
  | 'K' ->
    let txn, _ = Codec.read_varint payload 0 in
    Checkpoint txn
  | c -> invalid_arg (Printf.sprintf "Wal.decode_payload: bad kind %C" c)

(* CRC over kind + payload, so a frame whose kind byte was damaged into
   another valid kind still fails verification. *)
let frame_crc kind payload = Codec.crc32_string (String.make 1 kind ^ payload)

let encode_frame frame =
  let kind, payload = encode_payload frame in
  let buf = Buffer.create (String.length payload + 16) in
  Buffer.add_string buf magic;
  Buffer.add_char buf kind;
  Codec.add_u32 buf (String.length payload);
  Buffer.add_string buf payload;
  Codec.add_u32 buf (frame_crc kind payload);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)
(* ------------------------------------------------------------------ *)

let openfile path flags = Unix.openfile path flags 0o644
[@@analyze.fd_ok "the descriptor is the log handle: it lives in t until close"]

let create path =
  (* O_APPEND even for a fresh log: [reset] can then ftruncate and keep
     appending through the same descriptor without repositioning. *)
  let fd =
    openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_APPEND; Unix.O_CLOEXEC ]
  in
  { path; fd; appended = 0 }
[@@analyze.fd_ok "the descriptor is the handle: it lives in t until close"]

let open_append path =
  let fd = openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND; Unix.O_CLOEXEC ] in
  { path; fd; appended = 0 }
[@@analyze.fd_ok "the descriptor is the handle: it lives in t until close"]

let path t = t.path
let appended t = t.appended
let size_bytes t = (Unix.fstat t.fd).Unix.st_size

let write_all fd bytes =
  let len = Bytes.length bytes in
  let rec go off = if off < len then go (off + Unix.write fd bytes off (len - off)) in
  go 0

(* Bounded retry for the Fail action on a failpoint site: a Fail leaves
   no bytes behind (the frame is corrupted or rejected before the
   write), so re-running the attempt is safe and rides out
   probabilistic fault legs. Torn/Bitflip actions do land damaged
   bytes — deliberately: they simulate the crash the recovery scan must
   contain. *)
let attempts = 4

let rec with_retry ?(attempt = 1) f =
  match f () with
  | v -> v
  | exception Tm_fault.Fault.Io_error _ when attempt < attempts ->
    with_retry ~attempt:(attempt + 1) f

(** Append one frame (buffered in the OS; not yet durable — call
    {!sync}). The [wal.append] failpoint applies to the encoded frame
    bytes: [Fail] is retried boundedly and leaves nothing behind;
    [Torn]/[Bitflip] persist a damaged frame, as a crash mid-append
    would. *)
let append t frame =
  let encoded =
    with_retry (fun () ->
        Tm_fault.Fault.apply ~site:site_append (Bytes.of_string (encode_frame frame)))
  in
  write_all t.fd encoded;
  t.appended <- t.appended + 1;
  Tm_obs.Obs.incr c_appends;
  Tm_obs.Obs.add c_append_bytes (Bytes.length encoded);
  let kind =
    match frame with
    | Begin _ -> 'B'
    | Op _ -> 'O'
    | Page _ -> 'P'
    | Commit _ -> 'C'
    | Checkpoint _ -> 'K'
  in
  Tm_obs.Flight.emit Tm_obs.Flight.Wal_append (Char.code kind) (Bytes.length encoded) "";
  match frame with
  | Commit txn ->
    Tm_obs.Obs.incr c_commits;
    Tm_obs.Flight.emit Tm_obs.Flight.Wal_commit txn 0 ""
  | Begin _ | Op _ | Page _ | Checkpoint _ -> ()

(** Make every appended frame durable ([fsync]). The [wal.fsync]
    failpoint fires first ([Fail] retried boundedly). *)
let sync t =
  with_retry (fun () ->
      Tm_fault.Fault.guard site_fsync;
      Unix.fsync t.fd);
  Tm_obs.Obs.incr c_syncs;
  Tm_obs.Flight.emit Tm_obs.Flight.Wal_fsync 0 0 ""

let close t = Unix.close t.fd

(* ------------------------------------------------------------------ *)
(* Scanning (recovery)                                                 *)
(* ------------------------------------------------------------------ *)

type scanned = {
  frames : frame list;  (** every frame of the valid prefix, in file order *)
  committed : int list;  (** transaction ids with a [Commit], in commit order *)
  valid_bytes : int;  (** file offset just past the last valid frame *)
  committed_bytes : int;
      (** offset just past the last [Commit]/[Checkpoint] — the
          committed prefix recovery truncates to *)
  damaged : bool;  (** the scan stopped before the end of the file *)
}

let header_len = 2 (* magic *) + 1 (* kind *) + 4 (* u32 len *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Scan a WAL file from the start, stopping at the first damaged
    frame; absent files scan as empty. The [wal.replay] failpoint
    guards each decoded frame (so recovery itself can be crashed
    mid-replay by a fault leg). *)
let scan path =
  let contents = if Sys.file_exists path then read_file path else "" in
  let total = String.length contents in
  let is_kind c =
    match c with 'B' | 'O' | 'P' | 'C' | 'K' -> true | _ -> false
  in
  let rec go pos frames committed committed_bytes =
    if pos + header_len > total then finish pos frames committed committed_bytes (pos < total)
    else if not (String.equal (String.sub contents pos 2) magic) then
      finish pos frames committed committed_bytes true
    else begin
      let kind = contents.[pos + 2] in
      if not (is_kind kind) then finish pos frames committed committed_bytes true
      else begin
        let len, body = Codec.read_u32 contents (pos + 3) in
        if len < 0 || body + len + 4 > total then
          finish pos frames committed committed_bytes true
        else begin
          let payload = String.sub contents body len in
          let crc, fin = Codec.read_u32 contents (body + len) in
          if crc <> frame_crc kind payload then finish pos frames committed committed_bytes true
          else begin
            match decode_payload kind payload with
            | exception (Invalid_argument _ | Failure _) ->
              finish pos frames committed committed_bytes true
            | frame ->
              Tm_fault.Fault.guard site_replay;
              Tm_obs.Obs.incr c_replayed;
              let committed, committed_bytes =
                match frame with
                | Commit txn -> (txn :: committed, fin)
                | Checkpoint _ -> (committed, fin)
                | Begin _ | Op _ | Page _ -> (committed, committed_bytes)
              in
              go fin (frame :: frames) committed committed_bytes
          end
        end
      end
    end
  and finish pos frames committed committed_bytes damaged =
    {
      frames = List.rev frames;
      committed = List.rev committed;
      valid_bytes = pos;
      committed_bytes;
      damaged;
    }
  in
  go 0 [] [] 0

(** Truncate the file to [len] bytes — discarding a damaged tail and
    any partially-logged transactions after {!scan}. *)
let truncate path len =
  if Sys.file_exists path then begin
    Unix.truncate path len;
    Tm_obs.Obs.incr c_truncations;
    Tm_obs.Flight.emit Tm_obs.Flight.Wal_truncate len 0 ""
  end

(** Close, truncate to empty and reopen — the checkpoint reset. *)
let reset t =
  Unix.ftruncate t.fd 0;
  (* O_APPEND handles positioning for appends; creation-mode handles
     start at 0 already. Reset the frame counter for status output. *)
  t.appended <- 0;
  Tm_obs.Obs.incr c_truncations;
  Tm_obs.Flight.emit Tm_obs.Flight.Wal_truncate 0 0 ""
