lib/storage/pager.mli:
