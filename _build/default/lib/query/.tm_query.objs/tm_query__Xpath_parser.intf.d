lib/query/xpath_parser.mli: Twig
