(** Twig decomposition into root-to-leaf linear paths (paper
    Section 2.3) and the anchored pattern matcher used to post-filter
    index rows and locate branch-point positions inside matched data
    paths. *)

type step = { axis : Twig.axis; name : string; uid : int }

type linear = {
  steps : step list;  (** twig root first; never empty *)
  value : string option;  (** equality predicate at the leaf *)
  range : Twig.range option;  (** inequality predicate at the leaf *)
}

val leaf_uid : linear -> int
val step_uids : linear -> int list

val linear_paths : Twig.t -> linear list
(** All root-to-leaf paths; an internal node with both a value
    predicate and branches contributes an extra path ending there. *)

val deepest_shared_uid : linear -> linear -> int
(** Deepest twig node shared by two paths of the same twig.
    @raise Invalid_argument if they share nothing. *)

(** {1 Patterns over tag ids} *)

type tag_pattern = (Twig.axis * int) array

val wildcard : int
(** Tag id standing for a [*] step: matches any tag. *)

val tag_matches : int -> int -> bool
(** [tag_matches want got]: equality or [want = wildcard]. *)

val match_all : tag_pattern -> int array -> int array list
(** Every way the pattern matches the path with {e both ends anchored}
    (the first step at position 0 unless [Descendant]; the last step at
    the final position). Each result maps pattern index to path
    position. *)

val matches : tag_pattern -> int array -> bool

val child_suffix : tag_pattern -> int array
(** Longest trailing run of concrete [Child]-linked tags, evaluable as
    a B+-tree prefix scan on the reversed schema path; a leading
    [Descendant] step's tag is included, wildcards never are. *)

val is_pcsubpath : tag_pattern -> bool
(** No [Descendant] edges except possibly the first (paper
    Section 2.2), and no wildcards. *)
