let () = exit (Tm_analyze.Analyze.main (Array.to_list Sys.argv))
