(** A minimal HTTP/1.1 scrape-and-query endpoint over a loaded
    database, built on stdlib [Unix] sockets only.

    Endpoints (all GET): [/metrics] (Prometheus text), [/healthz]
    (canary lookup + pager fsck-lite), [/journal] and
    [/slow?threshold_ms=N] (query-lifecycle journal, JSON),
    [/warnings] (structured warnings, JSON), and
    [/query?q=XPATH&s=STRATEGY&timeout_ms=N].

    {!handle} is pure request dispatch (no sockets), so the endpoint
    surface is unit-testable; {!create}/{!run}/{!stop} wrap it in a
    loopback listener serving one connection at a time. *)

type response = { status : int; content_type : string; body : string }

val handle :
  ?canary:Tm_query.Twig.t ->
  Twigmatch.Database.t ->
  meth:string ->
  target:string ->
  response
(** Dispatch one request. [target] is the raw request target, e.g.
    ["/slow?threshold_ms=5"]; parameters are percent-decoded. [canary]
    overrides the /healthz lookup (default: the root tag of the first
    catalogued path). Never raises: errors become 4xx/5xx responses. *)

val url_decode : string -> string
(** Percent-decoding (plus [+] for space), as applied to query
    parameters. *)

(** {1 The socket server} *)

type t

val create : ?port:int -> ?canary:Tm_query.Twig.t -> Twigmatch.Database.t -> t
(** Bind a loopback listener. [port] 0 (the default) picks an ephemeral
    port — read it back with {!port}. *)

val port : t -> int

val run : t -> unit
(** Accept and serve connections sequentially on the calling domain
    until {!stop} is called (from another domain or a signal
    handler). *)

val stop : t -> unit
(** Stop {!run}: closes the listening socket, unblocking the accept
    loop. Idempotent. *)
