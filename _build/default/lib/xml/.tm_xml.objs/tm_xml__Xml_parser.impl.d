lib/xml/xml_parser.ml: Buffer List Printf String Xml_tree
