(** In-flight binding relations.

    A relation's columns are twig-node uids; each row binds those twig
    nodes to data-node ids. Linear-path evaluation produces one
    relation per path; twig answers come from natural-joining them on
    shared columns (the branch points) and projecting the output
    column. Relations live in memory, as intermediate results would in
    a relational executor's pipeline. *)

type t = {
  columns : int array;  (** twig uids, in path order *)
  rows : int array list;  (** each row has [Array.length columns] ids *)
}

let create columns rows = { columns; rows }
let empty columns = { columns; rows = [] }
let cardinality t = List.length t.rows
let columns t = t.columns

let column_index t uid =
  let rec go i =
    if i >= Array.length t.columns then None
    else if t.columns.(i) = uid then Some i
    else go (i + 1)
  in
  go 0

(** Values of column [uid], de-duplicated and sorted. *)
let column_values t uid =
  match column_index t uid with
  | None -> invalid_arg "Relation.column_values: no such column"
  | Some i -> List.map (fun row -> row.(i)) t.rows |> List.sort_uniq Int.compare

let shared_columns a b =
  Array.to_list a.columns |> List.filter (fun c -> Array.exists (( = ) c) b.columns)

let project t uids =
  let idx =
    List.map
      (fun uid ->
        match column_index t uid with
        | Some i -> i
        | None -> invalid_arg "Relation.project: no such column")
      uids
  in
  {
    columns = Array.of_list uids;
    rows = List.map (fun row -> Array.of_list (List.map (fun i -> row.(i)) idx)) t.rows;
  }

(* Rows are uid vectors; order them lexicographically with typed
   comparisons (length first, like the polymorphic order on arrays). *)
let compare_row (a : int array) (b : int array) =
  match Int.compare (Array.length a) (Array.length b) with
  | 0 ->
    let rec go i =
      if i >= Array.length a then 0
      else match Int.compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
    in
    go 0
  | c -> c

let distinct t = { t with rows = List.sort_uniq compare_row t.rows }

(* Key of a row on columns [idx]. *)
let key_of row idx = List.map (fun i -> row.(i)) idx
let compare_key = List.compare Int.compare

(** Natural hash join of [a] and [b] on their shared columns. The output
    columns are [a]'s columns followed by [b]'s non-shared columns. If
    there are no shared columns this is a cross product (never needed by
    the planner, but well-defined). Calls [on_probe] once per probe and
    [on_result] once per output row, letting the caller account work. *)
let hash_join ?(on_probe = fun () -> ()) ?(on_result = fun () -> ()) a b =
  let shared = shared_columns a b in
  let a_idx = List.map (fun c -> Option.get (column_index a c)) shared in
  let b_idx = List.map (fun c -> Option.get (column_index b c)) shared in
  let b_extra_cols =
    Array.to_list b.columns |> List.filter (fun c -> not (List.mem c shared))
  in
  let b_extra_idx = List.map (fun c -> Option.get (column_index b c)) b_extra_cols in
  let table = Hashtbl.create (max 16 (cardinality a)) in
  List.iter (fun row -> Hashtbl.add table (key_of row a_idx) row) a.rows;
  let out_columns = Array.append a.columns (Array.of_list b_extra_cols) in
  let rows =
    List.concat_map
      (fun brow ->
        on_probe ();
        Hashtbl.find_all table (key_of brow b_idx)
        |> List.map (fun arow ->
               on_result ();
               Array.append arow (Array.of_list (List.map (fun i -> brow.(i)) b_extra_idx))))
      b.rows
  in
  { columns = out_columns; rows }

(** Natural sort-merge join on shared columns — same result as
    {!hash_join} up to row order. Models the paper's merge-join plans
    for ROOTPATHS. *)
let merge_join ?(on_result = fun () -> ()) a b =
  let shared = shared_columns a b in
  let a_idx = List.map (fun c -> Option.get (column_index a c)) shared in
  let b_idx = List.map (fun c -> Option.get (column_index b c)) shared in
  let b_extra_cols =
    Array.to_list b.columns |> List.filter (fun c -> not (List.mem c shared))
  in
  let b_extra_idx = List.map (fun c -> Option.get (column_index b c)) b_extra_cols in
  let asorted = List.sort (fun r s -> compare_key (key_of r a_idx) (key_of s a_idx)) a.rows in
  let bsorted = List.sort (fun r s -> compare_key (key_of r b_idx) (key_of s b_idx)) b.rows in
  let out_columns = Array.append a.columns (Array.of_list b_extra_cols) in
  let rec groups rows idx =
    (* split sorted rows into (key, group) runs; runs are contiguous *)
    match rows with
    | [] -> []
    | r :: _ ->
      let k = key_of r idx in
      let rec split acc = function
        | s :: rest when compare_key (key_of s idx) k = 0 -> split (s :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let same, rest = split [] rows in
      (k, same) :: groups rest idx
  in
  let ga = groups asorted a_idx and gb = groups bsorted b_idx in
  let rec merge ga gb acc =
    match (ga, gb) with
    | [], _ | _, [] -> acc
    | (ka, rows_a) :: ga', (kb, rows_b) :: gb' ->
      let c = compare_key ka kb in
      if c < 0 then merge ga' gb acc
      else if c > 0 then merge ga gb' acc
      else
        let acc =
          List.fold_left
            (fun acc arow ->
              List.fold_left
                (fun acc brow ->
                  on_result ();
                  Array.append arow
                    (Array.of_list (List.map (fun i -> brow.(i)) b_extra_idx))
                  :: acc)
                acc rows_b)
            acc rows_a
        in
        merge ga' gb' acc
  in
  { columns = out_columns; rows = List.rev (merge ga gb []) }
