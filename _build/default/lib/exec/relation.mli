(** In-flight binding relations: columns are twig-node uids, rows bind
    them to data-node ids. Twig answers come from natural joins on
    shared columns (the branch points). *)

type t = { columns : int array; rows : int array list }

val create : int array -> int array list -> t
val empty : int array -> t
val cardinality : t -> int
val columns : t -> int array
val column_index : t -> int -> int option

val column_values : t -> int -> int list
(** Sorted distinct values of a column.
    @raise Invalid_argument if absent. *)

val shared_columns : t -> t -> int list
val project : t -> int list -> t
val distinct : t -> t

val hash_join : ?on_probe:(unit -> unit) -> ?on_result:(unit -> unit) -> t -> t -> t
(** Natural hash join on shared columns (cross product when none).
    Output columns: left's, then right's non-shared. *)

val merge_join : ?on_result:(unit -> unit) -> t -> t -> t
(** Sort-merge natural join; same result as {!hash_join} up to row
    order. Models the paper's ROOTPATHS plans. *)
