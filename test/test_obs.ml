(* Tests for the observability substrate (Tm_obs) and its wiring
   through the storage and execution layers: span nesting, buffer-pool
   counter fidelity against drop_caches, EXPLAIN ANALYZE / Stats
   reconciliation, and the disabled sink recording nothing. *)

open Twigmatch

module T = Tm_xml.Xml_tree
module Obs = Tm_obs.Obs
module Export = Tm_obs.Export

let check = Alcotest.check

(* The paper's running example (Figure 1). *)
let book_doc () =
  T.document
    [
      T.elem "book"
        [
          T.elem_text "title" "XML";
          T.elem "allauthors"
            [
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "poe" ];
              T.elem "author" [ T.elem_text "fn" "john"; T.elem_text "ln" "doe" ];
              T.elem "author" [ T.elem_text "fn" "jane"; T.elem_text "ln" "doe" ];
            ];
          T.elem_text "year" "2000";
          T.elem "chapter"
            [
              T.elem_text "title" "XML";
              T.elem "section" [ T.elem_text "head" "Origins" ];
            ];
        ];
    ]

let query = "/book[year = '2000']//author[fn = 'jane']"

(* ------------------------------------------------------------------ *)
(* Span trees                                                          *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let (), tr =
    Obs.with_enabled true (fun () ->
        Obs.trace "root" (fun () ->
            Obs.with_span "a" (fun () ->
                Obs.with_span "a1" ignore;
                Obs.with_span "a2" ignore);
            Obs.with_span "b" ignore))
  in
  let tr = Option.get tr in
  check Alcotest.string "root name" "root" tr.Obs.s_name;
  check
    Alcotest.(list string)
    "children in execution order" [ "a"; "b" ]
    (List.map (fun (s : Obs.span) -> s.Obs.s_name) tr.Obs.s_children);
  let a = List.hd tr.Obs.s_children in
  check
    Alcotest.(list string)
    "grandchildren nested under a" [ "a1"; "a2" ]
    (List.map (fun (s : Obs.span) -> s.Obs.s_name) a.Obs.s_children);
  let b = List.nth tr.Obs.s_children 1 in
  check Alcotest.int "b has no children" 0 (List.length b.Obs.s_children)

let test_span_outside_trace () =
  (* with_span outside a trace is a transparent no-op *)
  Obs.with_enabled true (fun () ->
      check Alcotest.int "value passes through" 7 (Obs.with_span "orphan" (fun () -> 7));
      check Alcotest.bool "not in a trace" false (Obs.in_trace ()))

let test_query_trace_shape () =
  let db = Database.create ~strategies:[ Database.RP ] (book_doc ()) in
  let twig = Tm_query.Xpath_parser.parse query in
  let r = Obs.with_enabled true (fun () -> Executor.run ~plan:(`Strategy Database.RP) db twig) in
  let tr = Option.get r.Executor.trace in
  check Alcotest.string "root span is the query" "query:RP" tr.Obs.s_name;
  (* two linear paths plus one merge join, in execution order *)
  check
    Alcotest.(list string)
    "plan children" [ "path:1"; "path:2"; "join:merge" ]
    (List.map (fun (s : Obs.span) -> s.Obs.s_name) tr.Obs.s_children);
  (* the rendering contains every operator *)
  let rendered = Export.trace_to_string tr in
  List.iter
    (fun needle ->
      check Alcotest.bool (needle ^ " rendered") true
        (let nh = String.length rendered and nn = String.length needle in
         let rec go i = i + nn <= nh && (String.sub rendered i nn = needle || go (i + 1)) in
         go 0))
    [ "query:RP"; "path:1"; "join:merge"; "ms" ]

(* ------------------------------------------------------------------ *)
(* Buffer-pool counters vs. drop_caches                                *)
(* ------------------------------------------------------------------ *)

let test_pool_counters_cold_vs_warm () =
  let db = Database.create ~strategies:[ Database.RP ] (book_doc ()) in
  let twig = Tm_query.Xpath_parser.parse query in
  let hits = Obs.counter "buffer_pool.hits" in
  let misses = Obs.counter "buffer_pool.misses" in
  (* the pool's own stats count from creation (sink on or off), so all
     comparisons are deltas over each run *)
  let pool () =
    let s = Tm_storage.Buffer_pool.stats db.Database.pool in
    (s.Tm_storage.Buffer_pool.logical_reads - s.Tm_storage.Buffer_pool.misses,
     s.Tm_storage.Buffer_pool.misses)
  in
  Obs.with_enabled true (fun () ->
      (* cold: every page the query touches must miss *)
      Database.drop_caches db;
      let h0 = Obs.value hits and m0 = Obs.value misses in
      let ph0, pm0 = pool () in
      ignore (Executor.run ~plan:(`Strategy Database.RP) db twig);
      let ph1, pm1 = pool () in
      (* first touch of every page must miss (later touches of the same
         page within the run may hit) *)
      check Alcotest.bool "cold run misses at least once" true (Obs.value misses > m0);
      check Alcotest.int "cold obs misses = pool misses" (pm1 - pm0) (Obs.value misses - m0);
      check Alcotest.int "cold obs hits = pool hits" (ph1 - ph0) (Obs.value hits - h0);
      (* warm: the same query touches the same pages, now resident *)
      let h1 = Obs.value hits and m1 = Obs.value misses in
      ignore (Executor.run ~plan:(`Strategy Database.RP) db twig);
      let ph2, pm2 = pool () in
      check Alcotest.int "warm run never misses" m1 (Obs.value misses);
      check Alcotest.bool "warm run hits at least once" true (Obs.value hits > h1);
      check Alcotest.int "warm obs hits = pool hits" (ph2 - ph1) (Obs.value hits - h1);
      check Alcotest.int "warm obs misses = pool misses" (pm2 - pm1) (Obs.value misses - m1))

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE vs. Stats                                           *)
(* ------------------------------------------------------------------ *)

let test_trace_reconciles_with_stats () =
  let db = Database.create ~strategies:[ Database.RP; Database.DP ] (book_doc ()) in
  let twig = Tm_query.Xpath_parser.parse query in
  List.iter
    (fun s ->
      let r = Obs.with_enabled true (fun () -> Executor.run ~plan:(`Strategy s) db twig) in
      let tr = Option.get r.Executor.trace in
      check Alcotest.int
        (Database.strategy_name s ^ ": trace rows = Stats.rows_produced")
        r.Executor.stats.Tm_exec.Stats.rows_produced
        (Obs.span_count "exec.rows_produced" tr);
      check Alcotest.int
        (Database.strategy_name s ^ ": trace joins = Stats.join_steps")
        r.Executor.stats.Tm_exec.Stats.join_steps
        (Obs.span_count "exec.join_steps" tr))
    [ Database.RP; Database.DP ]

let test_explain_analyze_output () =
  let db = Database.create ~strategies:[ Database.RP ] (book_doc ()) in
  let twig = Tm_query.Xpath_parser.parse query in
  let out = Executor.explain ~analyze:true db Database.RP twig in
  let contains needle =
    let nh = String.length out and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub out i nn = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "has analyze section" true (contains "EXPLAIN ANALYZE: 2 results");
  check Alcotest.bool "has span tree" true (contains "query:RP");
  check Alcotest.bool "has stats line" true (contains "stats:");
  (* analyze must not leave the global sink enabled *)
  check Alcotest.bool "sink restored" false (Obs.enabled ())

(* ------------------------------------------------------------------ *)
(* Disabled sink records nothing                                       *)
(* ------------------------------------------------------------------ *)

let test_disabled_sink_is_silent () =
  let db = Database.create ~strategies:[ Database.RP; Database.DP ] (book_doc ()) in
  let twig = Tm_query.Xpath_parser.parse query in
  Obs.with_enabled true (fun () -> Obs.reset ());
  let before = Obs.with_enabled true (fun () -> Obs.counters ()) in
  Obs.with_enabled false (fun () ->
      List.iter
        (fun s ->
          let r = Executor.run ~plan:(`Strategy s) db twig in
          check Alcotest.(option reject) (Database.strategy_name s ^ ": no trace") None
            (Option.map (fun _ -> ()) r.Executor.trace))
        [ Database.RP; Database.DP ]);
  let after = Obs.with_enabled true (fun () -> Obs.counters ()) in
  check
    Alcotest.(list (pair string int))
    "no counter moved while disabled" before after;
  List.iter
    (fun (h : Obs.histogram) ->
      check Alcotest.int (h.Obs.h_name ^ " untouched") 0 h.Obs.h_count)
    (Obs.histograms ())

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "outside trace" `Quick test_span_outside_trace;
          Alcotest.test_case "query trace shape" `Quick test_query_trace_shape;
        ] );
      ( "counters",
        [ Alcotest.test_case "pool cold/warm vs drop_caches" `Quick test_pool_counters_cold_vs_warm ]
      );
      ( "analyze",
        [
          Alcotest.test_case "trace reconciles with Stats" `Quick test_trace_reconciles_with_stats;
          Alcotest.test_case "explain ~analyze output" `Quick test_explain_analyze_output;
        ] );
      ( "disabled",
        [ Alcotest.test_case "sink off records nothing" `Quick test_disabled_sink_is_silent ] );
    ]
