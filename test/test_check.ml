(* Tests for Tm_check (the offline fsck): a clean build must verify
   clean, and each class of deliberately injected corruption must be
   detected with correct provenance (zero false negatives).

   Corruption is written through [Buffer_pool.write], which bypasses the
   B+-tree's decoded-node cache version bump — exactly the post-crash /
   bit-rot scenario where the tree still "works" through its cache but
   the stored bytes are wrong. The verifier must see the bytes. *)

open Tm_storage
open Tm_check
module Db = Twigmatch.Database

let check = Alcotest.check

let xmark ?(scale = 0.01) () =
  Tm_datasets.Xmark_gen.generate { Tm_datasets.Xmark_gen.seed = 7; scale }

let dblp ?(scale = 0.05) () =
  Tm_datasets.Dblp_gen.generate { Tm_datasets.Dblp_gen.seed = 7; scale }

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

(* Leaves of [tree] in DFS (key) order, via the raw page-view API. *)
let find_leaves tree =
  let rec go page acc =
    match Bptree.view_page tree page with
    | Error m -> Alcotest.failf "undecodable page %d: %s" page m
    | Ok (Bptree.Leaf_view { entries; next }) -> (page, entries, next) :: acc
    | Ok (Bptree.Internal_view { children; _ }) ->
      Array.fold_left (fun acc c -> go c acc) acc children
  in
  List.rev (go (Bptree.root_page tree) [])

(* Overwrite a leaf page with the canonical encoding of the given view,
   behind the decode cache's back. *)
let rewrite_leaf tree page entries next =
  Buffer_pool.write (Bptree.pool tree) page
    (Bytes.of_string (Bptree.encode_view tree (Bptree.Leaf_view { entries; next })))

let has report code ?structure ?page () =
  List.exists
    (fun (v : Check.violation) ->
      v.Check.code = code
      && (match structure with
         | None -> true
         | Some s -> String.equal v.Check.loc.Check.structure s)
      && match page with None -> true | Some p -> v.Check.loc.Check.page = Some p)
    report.Check.violations

let assert_detected report code ?structure ?page () =
  if not (has report code ?structure ?page ()) then
    Alcotest.failf "expected a %s violation%s, report was:\n%s" (Check.code_name code)
      (match structure with None -> "" | Some s -> " in " ^ s)
      (Check.report_to_string report)

(* ------------------------------------------------------------------ *)
(* Clean builds                                                        *)
(* ------------------------------------------------------------------ *)

let test_clean_xmark () =
  let report = Check.check_database (Db.create (xmark ())) in
  check Alcotest.bool "clean" true (Check.is_clean report);
  check Alcotest.bool "covered structures" true (report.Check.summary.Check.structures > 0);
  check Alcotest.bool "covered entries" true (report.Check.summary.Check.entries > 0)

let test_clean_dblp () =
  let report = Check.check_database (Db.create (dblp ())) in
  check Alcotest.bool "clean" true (Check.is_clean report)

let test_clean_report_rendering () =
  let report = Check.check_database (Db.create ~strategies:[ Db.RP ] (xmark ())) in
  let text = Check.report_to_string report in
  check Alcotest.bool "text mentions clean" true
    (String.length text >= 11 && String.equal (String.sub text 0 11) "fsck: clean");
  let json = Check.report_to_json report in
  check Alcotest.bool "json clean flag" true
    (String.length json >= 14 && String.equal (String.sub json 0 14) "{\"clean\":true,")

(* ------------------------------------------------------------------ *)
(* Injected corruption                                                 *)
(* ------------------------------------------------------------------ *)

(* Swap two distinct-keyed entries inside one ROOTPATHS leaf: in-node
   key order breaks on that page and nowhere else (the multiset is
   unchanged, and the rewrite is canonical, so no round-trip or
   missing/extra-row noise). *)
let test_swapped_keys_detected () =
  let db = Db.create ~strategies:[ Db.RP ] (xmark ()) in
  let tree = Tm_index.Family.tree (Option.get db.Db.rootpaths) in
  let page, entries, next, j =
    match
      List.find_map
        (fun (page, entries, next) ->
          let n = Array.length entries in
          let rec find i =
            if i >= n then None
            else if not (String.equal (fst entries.(0)) (fst entries.(i))) then Some i
            else find (i + 1)
          in
          Option.map (fun j -> (page, entries, next, j)) (find 1))
        (find_leaves tree)
    with
    | Some x -> x
    | None -> Alcotest.fail "no leaf with two distinct keys"
  in
  let swapped = Array.copy entries in
  swapped.(0) <- entries.(j);
  swapped.(j) <- entries.(0);
  rewrite_leaf tree page swapped next;
  let report = Check.check_database db in
  assert_detected report Check.Key_order ~structure:"rootpaths" ~page ();
  check Alcotest.bool "no missing rows (multiset unchanged)" false
    (has report Check.Missing_row ())

(* Truncate one delta-encoded IdList: |IdList| no longer matches
   |SchemaPath|. *)
let test_truncated_idlist_detected () =
  let db = Db.create ~strategies:[ Db.RP ] (xmark ()) in
  let fam = Option.get db.Db.rootpaths in
  let tree = Tm_index.Family.tree fam in
  let page, entries, next, slot =
    match
      List.find_map
        (fun (page, entries, next) ->
          let n = Array.length entries in
          let rec find i =
            if i >= n then None
            else if List.length (Tm_index.Family.decode_idlist fam (snd entries.(i))) >= 2 then
              Some i
            else find (i + 1)
          in
          Option.map (fun i -> (page, entries, next, i)) (find 0))
        (find_leaves tree)
    with
    | Some x -> x
    | None -> Alcotest.fail "no entry with >= 2 ids"
  in
  let key, payload = entries.(slot) in
  let ids = Tm_index.Family.decode_idlist fam payload in
  let truncated = List.filteri (fun i _ -> i < List.length ids - 1) ids in
  let corrupted = Array.copy entries in
  corrupted.(slot) <- (key, Tm_index.Family.encode_idlist fam truncated);
  rewrite_leaf tree page corrupted next;
  let report = Check.check_database db in
  assert_detected report Check.Idlist_length ~structure:"rootpaths" ~page ()

(* Reverse the ids of one IdList: delta decode still succeeds but the
   ids are no longer strictly increasing, and the chain contradicts the
   edge table. *)
let test_idlist_order_detected () =
  let db = Db.create ~strategies:[ Db.RP ] (xmark ()) in
  let fam = Option.get db.Db.rootpaths in
  let tree = Tm_index.Family.tree fam in
  let page, entries, next, slot =
    match
      List.find_map
        (fun (page, entries, next) ->
          let n = Array.length entries in
          let rec find i =
            if i >= n then None
            else if List.length (Tm_index.Family.decode_idlist fam (snd entries.(i))) >= 2 then
              Some i
            else find (i + 1)
          in
          Option.map (fun i -> (page, entries, next, i)) (find 0))
        (find_leaves tree)
    with
    | Some x -> x
    | None -> Alcotest.fail "no entry with >= 2 ids"
  in
  let key, payload = entries.(slot) in
  let ids = List.rev (Tm_index.Family.decode_idlist fam payload) in
  let corrupted = Array.copy entries in
  corrupted.(slot) <- (key, Tm_index.Family.encode_idlist fam ids);
  rewrite_leaf tree page corrupted next;
  let report = Check.check_database db in
  assert_detected report Check.Idlist_order ~structure:"rootpaths" ~page ()

(* Delete one DATAPATHS entry through the tree API: the structure stays
   sound, but the subpath closure is no longer complete — only the
   semantic cross-check against the recomputed 4-ary relation sees it. *)
let test_dropped_subpath_detected () =
  let db = Db.create ~strategies:[ Db.DP ] (xmark ()) in
  let fam = Option.get db.Db.datapaths in
  let tree = Tm_index.Family.tree fam in
  let key, payload =
    match Bptree.to_list tree with
    | e :: _ -> e
    | [] -> Alcotest.fail "empty datapaths"
  in
  check Alcotest.bool "delete found the entry" true (Bptree.delete tree key payload);
  let report = Check.check_database db in
  assert_detected report Check.Missing_row ~structure:"datapaths" ();
  check Alcotest.bool "no extra rows" false (has report Check.Extra_row ())

(* Rewrite a front-coded leaf with a valid but non-canonical encoding
   (all shared-prefix lengths forced to 0): decodes to the same
   entries, so only the round-trip check can catch it. *)
let test_roundtrip_detected () =
  let pool = Buffer_pool.create (Pager.create ()) in
  let entries =
    List.init 50 (fun i -> (Printf.sprintf "shared_prefix_key_%03d" i, Printf.sprintf "p%d" i))
  in
  let tree = Bptree.bulk_load ~name:"rt" pool entries in
  let page, stored, next =
    match find_leaves tree with
    | (page, stored, next) :: _ when Array.length stored >= 2 -> (page, stored, next)
    | _ -> Alcotest.fail "expected a populated leaf"
  in
  let buf = Buffer.create 512 in
  Buffer.add_char buf 'L';
  Codec.add_u16 buf (Array.length stored);
  Codec.add_u32 buf (match next with None -> 0 | Some p -> p + 1);
  Array.iter
    (fun (k, p) ->
      Codec.add_varint buf 0;
      Codec.add_lstring buf k;
      Codec.add_lstring buf p)
    stored;
  Buffer_pool.write pool page (Bytes.of_string (Buffer.contents buf));
  let violations = Check.check_tree tree in
  check Alcotest.bool "roundtrip violation" true
    (List.exists
       (fun (v : Check.violation) ->
         v.Check.code = Check.Roundtrip && v.Check.loc.Check.page = Some page)
       violations);
  check Alcotest.bool "no key-order noise" false
    (List.exists (fun (v : Check.violation) -> v.Check.code = Check.Key_order) violations)

(* Point a leaf's next pointer past the pager's allocated range. *)
let test_dangling_next_detected () =
  let pool = Buffer_pool.create (Pager.create ()) in
  let entries = List.init 5 (fun i -> (Printf.sprintf "k%d" i, "p")) in
  let tree = Bptree.bulk_load ~name:"dangling" pool entries in
  let page, stored, _ =
    match List.rev (find_leaves tree) with
    | last :: _ -> last
    | [] -> Alcotest.fail "no leaves"
  in
  rewrite_leaf tree page stored (Some 9999);
  let violations = Check.check_tree tree in
  check Alcotest.bool "page bounds violation" true
    (List.exists
       (fun (v : Check.violation) ->
         v.Check.code = Check.Page_bounds && v.Check.loc.Check.page = Some page)
       violations)

(* Flip one stored bit behind every cache (pager-level, after the pool
   is dropped): each read of the page now fails its CRC32. fsck must
   name the page — via the dedicated pager pass and via the tree walk's
   Corrupt_page guard — instead of crashing. *)
let test_bitflip_checksum_detected () =
  let db = Db.create ~strategies:[ Db.RP ] (xmark ()) in
  let tree = Tm_index.Family.tree (Option.get db.Db.rootpaths) in
  let page =
    match find_leaves tree with
    | (page, _, _) :: _ -> page
    | [] -> Alcotest.fail "no leaves"
  in
  Db.drop_caches db;
  Pager.unsafe_flip_bit db.Db.pager ~page ~bit:100;
  let report = Check.check_database db in
  assert_detected report Check.Checksum ~structure:"pager" ~page ();
  assert_detected report Check.Checksum ~structure:"rootpaths" ~page ()

(* Flip a bit of the stored checksum itself (the page bytes stay good):
   the mismatch must be reported all the same. *)
let test_crc_bitflip_detected () =
  let db = Db.create ~strategies:[ Db.RP ] (xmark ()) in
  let tree = Tm_index.Family.tree (Option.get db.Db.rootpaths) in
  let page = Bptree.root_page tree in
  Db.drop_caches db;
  Pager.unsafe_flip_crc_bit db.Db.pager ~page ~bit:7;
  let report = Check.check_database db in
  assert_detected report Check.Checksum ~structure:"pager" ~page ()

(* check_pager alone: clean pager -> no violations; corrupt one page ->
   exactly that page is named. *)
let test_check_pager_direct () =
  let db = Db.create ~strategies:[ Db.RP ] (xmark ()) in
  Db.drop_caches db;
  check Alcotest.int "clean pager" 0 (List.length (Check.check_pager db.Db.pager));
  let page = Bptree.root_page (Tm_index.Family.tree (Option.get db.Db.rootpaths)) in
  Pager.unsafe_flip_bit db.Db.pager ~page ~bit:9;
  match Check.check_pager db.Db.pager with
  | [ v ] ->
    check Alcotest.string "code" "checksum" (Check.code_name v.Check.code);
    check (Alcotest.option Alcotest.int) "page" (Some page) v.Check.loc.Check.page
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

(* Clobber an Edge heap page header. *)
let test_heap_corruption_detected () =
  let db = Db.create ~strategies:[ Db.Edge ] (xmark ()) in
  let heap = Tm_xmldb.Edge_table.heap db.Db.edge in
  let page =
    match Heap_file.pages heap with p :: _ -> p | [] -> Alcotest.fail "empty heap"
  in
  Buffer_pool.write db.Db.pool page (Bytes.of_string "Xclobbered");
  let report = Check.check_database db in
  assert_detected report Check.Heap_corrupt ~structure:"edge_heap" ~page ()

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "clean",
      [
        Alcotest.test_case "xmark verifies clean" `Quick test_clean_xmark;
        Alcotest.test_case "dblp verifies clean" `Quick test_clean_dblp;
        Alcotest.test_case "report rendering" `Quick test_clean_report_rendering;
      ] );
    ( "corruption",
      [
        Alcotest.test_case "swapped leaf keys" `Quick test_swapped_keys_detected;
        Alcotest.test_case "truncated idlist" `Quick test_truncated_idlist_detected;
        Alcotest.test_case "idlist order" `Quick test_idlist_order_detected;
        Alcotest.test_case "dropped datapaths subpath" `Quick test_dropped_subpath_detected;
        Alcotest.test_case "non-canonical front coding" `Quick test_roundtrip_detected;
        Alcotest.test_case "dangling next pointer" `Quick test_dangling_next_detected;
        Alcotest.test_case "bit-flipped leaf page" `Quick test_bitflip_checksum_detected;
        Alcotest.test_case "bit-flipped stored crc" `Quick test_crc_bitflip_detected;
        Alcotest.test_case "check_pager direct" `Quick test_check_pager_direct;
        Alcotest.test_case "clobbered heap page" `Quick test_heap_corruption_detected;
      ] );
  ]

let () = Alcotest.run "tm_check" suite
